"""Credence baseline: vote correlation for object reputation (ref [5]).

Walsh & Sirer's Credence weighs another peer's votes by the *correlation*
between that peer's voting history and one's own: peers who voted like me in
the past predict my opinion of new files.  This is the closest prior work to
the paper's file-based trust dimension, but it is vote-only — it cannot use
retention time, download volume or user ranks, so it shares the sparse-vote
problem ("less than 1% of the popular files on KaZaA are voted on").

Implementation: the standard Credence pairwise correlation coefficient over
binary votes (vote >= 0.5 counts as positive), and a file score that is the
correlation-weighted average of others' votes.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from .base import ReputationMechanism

__all__ = ["CredenceMechanism"]


class CredenceMechanism(ReputationMechanism):
    """Vote-correlation object reputation."""

    name = "credence"

    def __init__(self, min_overlap: int = 2):
        if min_overlap < 1:
            raise ValueError("min_overlap must be >= 1")
        self._min_overlap = min_overlap
        # user -> file -> binary vote (True = positive).
        self._votes: Dict[str, Dict[str, bool]] = {}

    # ------------------------------------------------------------------ #
    # Signals                                                            #
    # ------------------------------------------------------------------ #

    def record_vote(self, voter: str, file_id: str, vote: float,
                    timestamp: float = 0.0) -> None:
        self._votes.setdefault(voter, {})[file_id] = vote >= 0.5

    # ------------------------------------------------------------------ #
    # Correlation                                                        #
    # ------------------------------------------------------------------ #

    def correlation(self, user_a: str, user_b: str) -> Optional[float]:
        """Phi coefficient between two users' overlapping binary votes.

        Returns None when the overlap is below ``min_overlap``; returns a
        value in [-1, 1] otherwise (degenerate all-same-vote overlaps count
        as perfect agreement/disagreement by convention).
        """
        votes_a = self._votes.get(user_a, {})
        votes_b = self._votes.get(user_b, {})
        if len(votes_a) > len(votes_b):
            votes_a, votes_b = votes_b, votes_a
        shared = [file_id for file_id in votes_a if file_id in votes_b]
        if len(shared) < self._min_overlap:
            return None
        both_pos = sum(1 for f in shared
                       if self._votes[user_a].get(f) and self._votes[user_b].get(f))
        both_neg = sum(1 for f in shared
                       if not self._votes[user_a].get(f) and not self._votes[user_b].get(f))
        only_a = sum(1 for f in shared
                     if self._votes[user_a].get(f) and not self._votes[user_b].get(f))
        only_b = len(shared) - both_pos - both_neg - only_a
        denominator = math.sqrt(float((both_pos + only_a) * (both_neg + only_b)
                                      * (both_pos + only_b) * (both_neg + only_a)))
        if denominator == 0.0:
            agreement = (both_pos + both_neg) / len(shared)
            return 2.0 * agreement - 1.0
        return (both_pos * both_neg - only_a * only_b) / denominator

    # ------------------------------------------------------------------ #
    # Queries                                                            #
    # ------------------------------------------------------------------ #

    def reputation(self, observer: str, target: str) -> float:
        """Positive vote correlation (negative/unknown correlations -> 0)."""
        value = self.correlation(observer, target)
        if value is None or value <= 0:
            return 0.0
        return value

    def file_score(self, observer: str, file_id: str) -> Optional[float]:
        """Correlation-weighted average of other users' votes on the file."""
        numerator = denominator = 0.0
        for voter, votes in self._votes.items():
            if voter == observer or file_id not in votes:
                continue
            weight = self.reputation(observer, voter)
            if weight > 0:
                numerator += weight * (1.0 if votes[file_id] else 0.0)
                denominator += weight
        if denominator == 0.0:
            return None
        return numerator / denominator

    def vote_count(self, user: str) -> int:
        return len(self._votes.get(user, {}))

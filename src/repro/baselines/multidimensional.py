"""Adapter: the paper's system behind the common mechanism interface.

Wraps :class:`repro.core.MultiDimensionalReputationSystem` so the simulator
and benchmarks can drive it interchangeably with the baselines.  All signals
map one-to-one onto the façade; ``file_score`` is Eq. 9's file reputation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.config import DEFAULT_CONFIG, ReputationConfig
from ..core.reputation_system import MultiDimensionalReputationSystem
from ..obs.recorder import NullRecorder
from .base import ReputationMechanism

__all__ = ["MultiDimensionalMechanism"]


class MultiDimensionalMechanism(ReputationMechanism):
    """The paper's multi-dimensional reputation system as a mechanism."""

    name = "multidimensional"

    def __init__(self, config: ReputationConfig = DEFAULT_CONFIG,
                 auto_refresh: bool = False):
        # Simulation-friendly default: matrices are rebuilt at refresh()
        # (the simulator's maintenance tick), not on every ingested event.
        self.system = MultiDimensionalReputationSystem(
            config, auto_refresh=auto_refresh)

    def bind_recorder(self, recorder: NullRecorder) -> None:
        """Propagate the recorder into the wrapped reputation system so the
        multitrust power iteration reports per-step residuals."""
        self.recorder = recorder
        self.system.recorder = recorder

    # ------------------------------------------------------------------ #
    # Signals                                                            #
    # ------------------------------------------------------------------ #

    def record_download(self, downloader: str, uploader: str, file_id: str,
                        size_bytes: float, timestamp: float = 0.0) -> None:
        self.system.record_download(downloader, uploader, file_id,
                                    size_bytes, timestamp)

    def record_vote(self, voter: str, file_id: str, vote: float,
                    timestamp: float = 0.0) -> None:
        self.system.record_vote(voter, file_id, vote, timestamp)

    def record_retention(self, user: str, file_id: str,
                         retention_seconds: float,
                         timestamp: float = 0.0) -> None:
        self.system.record_retention(user, file_id, retention_seconds,
                                     timestamp)

    def record_rank(self, rater: str, ratee: str, rating: float) -> None:
        self.system.record_rank(rater, ratee, rating)

    def record_blacklist(self, user: str, target: str) -> None:
        self.system.add_to_blacklist(user, target)

    def record_deletion(self, user: str, file_id: str,
                        timestamp: float = 0.0) -> None:
        self.system.record_fake_deletion(user, file_id, timestamp)

    def record_upload_outcome(self, uploader: str, positive: bool,
                              timestamp: float = 0.0) -> None:
        if positive:
            self.system.record_real_upload(uploader)

    # ------------------------------------------------------------------ #
    # Queries                                                            #
    # ------------------------------------------------------------------ #

    def refresh(self) -> None:
        with self.recorder.span("mechanism.refresh"):
            self.system.recompute()
            # Drives the incremental pipeline: only rows touched by deltas
            # since the previous tick are re-derived (pipeline_refresh
            # events carry the per-stage dirty counts).
            self.system.refresh_view()
        self.recorder.inc("mechanism.refreshes")

    def reputation(self, observer: str, target: str) -> float:
        return self.system.effective_reputation(observer, target)

    def is_distrusted(self, observer: str, target: str) -> bool:
        return self.system.user_trust.is_blacklisted(observer, target)

    def file_score(self, observer: str, file_id: str) -> Optional[float]:
        judgement = self.system.judge_file(observer, file_id)
        return judgement.reputation

    def global_scores(self) -> Dict[str, float]:
        return self.system.global_reputation()

    def trust_edges(self, per_row: int = 6) -> List[Tuple[str, str, float]]:
        """Strongest one-step ``TM`` edges via the zero-copy refresh view."""
        return list(self.system.refresh_view().top_trust_edges(per_row))

"""Tit-for-Tat baseline: private download history only.

Following BitTorrent [6] / emule [7] and the analysis in Lian et al. [13]:
a peer prioritises requesters from whom *it* has successfully downloaded.
Trust is strictly private — no transitivity, no sharing — which is exactly
why its request coverage is poor ("a one month download log only enforces
Tit-for-Tat to only 2% of a peer's uploads and the other 98% are blind
uploads", Section 2).  Benchmark C1 measures that coverage.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .base import ReputationMechanism

__all__ = ["TitForTatMechanism"]


class TitForTatMechanism(ReputationMechanism):
    """Private-history reciprocity: trust = bytes downloaded from target.

    ``history_window_seconds`` bounds the private history (the paper's
    experiment uses a one-month log); older contributions are discarded on
    :meth:`refresh`.
    """

    name = "tit-for-tat"

    def __init__(self, history_window_seconds: Optional[float] = None):
        self._received: Dict[Tuple[str, str], float] = {}
        self._events: list = []  # (timestamp, downloader, uploader, size)
        self._window = history_window_seconds
        self._now = 0.0

    def record_download(self, downloader: str, uploader: str, file_id: str,
                        size_bytes: float, timestamp: float = 0.0) -> None:
        key = (downloader, uploader)
        self._received[key] = self._received.get(key, 0.0) + size_bytes
        self._now = max(self._now, timestamp)
        if self._window is not None:
            self._events.append((timestamp, downloader, uploader, size_bytes))

    def refresh(self) -> None:
        """Expire history that fell outside the window."""
        if self._window is None:
            return
        cutoff = self._now - self._window
        kept = []
        expired: Dict[Tuple[str, str], float] = {}
        for event in self._events:
            timestamp, downloader, uploader, size_bytes = event
            if timestamp < cutoff:
                key = (downloader, uploader)
                expired[key] = expired.get(key, 0.0) + size_bytes
            else:
                kept.append(event)
        self._events = kept
        for key, size_bytes in expired.items():
            remaining = self._received.get(key, 0.0) - size_bytes
            if remaining > 1e-9:
                self._received[key] = remaining
            else:
                self._received.pop(key, None)

    def reputation(self, observer: str, target: str) -> float:
        """Bytes ``observer`` has received from ``target`` (private history)."""
        return self._received.get((observer, target), 0.0)

    def has_history(self, observer: str, target: str) -> bool:
        """True when the observer's decision about target is *not* blind."""
        return self._received.get((observer, target), 0.0) > 0.0

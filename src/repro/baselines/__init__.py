"""Reputation-mechanism baselines behind a common interface.

``ALL_MECHANISMS`` maps mechanism name -> zero-argument factory, so
benchmarks can sweep every mechanism uniformly.
"""

from typing import Callable, Dict

from .base import ReputationMechanism
from .credence import CredenceMechanism
from .eigentrust import EigenTrustMechanism
from .lip import LIPMechanism
from .multidimensional import MultiDimensionalMechanism
from .multitrust_lian import LianMultiTrustMechanism
from .null import NullMechanism
from .tit_for_tat import TitForTatMechanism

ALL_MECHANISMS: Dict[str, Callable[[], ReputationMechanism]] = {
    "null": NullMechanism,
    "tit-for-tat": TitForTatMechanism,
    "eigentrust": EigenTrustMechanism,
    "multitrust-lian": LianMultiTrustMechanism,
    "lip": LIPMechanism,
    "credence": CredenceMechanism,
    "multidimensional": MultiDimensionalMechanism,
}

__all__ = [
    "ReputationMechanism",
    "CredenceMechanism",
    "EigenTrustMechanism",
    "LIPMechanism",
    "MultiDimensionalMechanism",
    "LianMultiTrustMechanism",
    "NullMechanism",
    "TitForTatMechanism",
    "ALL_MECHANISMS",
]

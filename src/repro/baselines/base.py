"""Common interface for all reputation mechanisms.

Both the paper's system and every baseline (Tit-for-Tat, EigenTrust, Lian's
hybrid multi-trust, LIP, Credence, null) are driven through this interface so
the simulator and benchmarks can swap mechanisms without code changes.

A mechanism consumes behavioural *signals* (downloads, votes, retention
updates, user ranks) — each implementation simply ignores the signals it has
no use for — and answers two queries:

* :meth:`reputation` — how much does ``observer`` trust ``target``?  Used
  for peer selection and service differentiation.  Scale is
  mechanism-specific; only within-observer comparisons are meaningful.
* :meth:`file_score` — the mechanism's estimate (in [0, 1]) that a file is
  real, or ``None`` when it has no evidence.  Used for fake-file filtering.

``refresh`` gives batch mechanisms (matrix powers, eigenvector iterations) a
single point to recompute; it may be a no-op for purely incremental ones.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Tuple

from ..obs.recorder import NULL_RECORDER, NullRecorder

__all__ = ["ReputationMechanism"]


class ReputationMechanism(abc.ABC):
    """Abstract base for reputation mechanisms (see module docstring)."""

    #: Human-readable mechanism name used in benchmark tables.
    name: str = "abstract"

    #: Observability sink; the default NULL_RECORDER ignores everything.
    recorder: NullRecorder = NULL_RECORDER

    def bind_recorder(self, recorder: NullRecorder) -> None:
        """Attach an observability recorder (the simulator does this so
        batch recomputations can report convergence residuals and timings).
        Mechanisms with deeper machinery override to propagate it."""
        self.recorder = recorder

    # ------------------------------------------------------------------ #
    # Signals (default: ignore)                                          #
    # ------------------------------------------------------------------ #

    def record_download(self, downloader: str, uploader: str, file_id: str,
                        size_bytes: float, timestamp: float = 0.0) -> None:
        """A transfer completed (validity unknown at this point)."""

    def record_vote(self, voter: str, file_id: str, vote: float,
                    timestamp: float = 0.0) -> None:
        """An explicit vote in [0, 1] on a file."""

    def record_retention(self, user: str, file_id: str,
                         retention_seconds: float,
                         timestamp: float = 0.0) -> None:
        """Refresh of how long ``user`` has kept ``file_id``."""

    def record_rank(self, rater: str, ratee: str, rating: float) -> None:
        """A direct user-to-user rating in [0, 1]."""

    def record_blacklist(self, user: str, target: str) -> None:
        """``user`` blacklisted ``target``; defaults to a zero rating."""
        self.record_rank(user, target, 0.0)

    def record_deletion(self, user: str, file_id: str,
                        timestamp: float = 0.0) -> None:
        """``user`` deleted ``file_id`` (strong negative implicit signal)."""

    def record_upload_outcome(self, uploader: str, positive: bool,
                              timestamp: float = 0.0) -> None:
        """An upload was later judged good (positive) or fake by its receiver.

        This is the incentive hook of Section 3.4 ("uploading real files ...
        can increase a user's reputation"); most baselines ignore it.
        """

    # ------------------------------------------------------------------ #
    # Membership                                                         #
    # ------------------------------------------------------------------ #

    def on_peer_online(self, user: str, timestamp: float = 0.0) -> None:
        """``user`` came online (joined/rejoined).  Default: ignore."""

    def on_peer_offline(self, user: str, timestamp: float = 0.0) -> None:
        """``user`` went offline.  Default: ignore."""

    # ------------------------------------------------------------------ #
    # Maintenance                                                        #
    # ------------------------------------------------------------------ #

    def refresh(self) -> None:
        """Recompute any batch state (matrices, eigenvectors).  Optional."""

    # ------------------------------------------------------------------ #
    # Queries                                                            #
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def reputation(self, observer: str, target: str) -> float:
        """Trust of ``observer`` in ``target`` (mechanism-specific scale)."""

    def is_distrusted(self, observer: str, target: str) -> bool:
        """True when the observer *explicitly* distrusts the target.

        Distinguishes "reputation zero because unknown" (newcomers deserve
        neutral treatment) from "reputation zero because blacklisted" (the
        paper: blacklisted users "should be assigned with zero").  Default:
        nobody is explicitly distrusted.
        """
        return False

    def file_score(self, observer: str, file_id: str) -> Optional[float]:
        """Estimated probability the file is real, or None if unknown."""
        return None

    def global_scores(self) -> Dict[str, float]:
        """Per-user global reputation where the mechanism defines one.

        Pairwise-only mechanisms return an empty dict.
        """
        return {}

    def trust_edges(self, per_row: int = 6) -> List[Tuple[str, str, float]]:
        """Strongest one-step trust edges ``(truster, trustee, value)``.

        The monitoring layer samples these at each refresh to feed the
        collusion-ring detector; mechanisms without an explicit trust
        matrix return an empty list (the default).  Implementations must
        be deterministic (sorted trusters, ties broken by trustee id).
        """
        return []

"""EigenTrust baseline (Kamvar, Schlosser, Garcia-Molina — WWW 2003).

EigenTrust assigns each peer a single *global* trust value: the stationary
distribution of a random walk over the normalised local-trust matrix —
"the page link in the PageRank algorithm becomes traffic flow in EigenTrust"
(Section 2).  The canonical algorithm:

1. Local trust ``s_ij`` = satisfactory minus unsatisfactory transactions
   with ``j`` (clamped at 0); here satisfaction is the downloader's
   evaluation of the received file.
2. Normalise: ``c_ij = max(s_ij, 0) / sum_j max(s_ij, 0)``.
3. Power iteration with pre-trusted damping::

       t <- (1 - a) * C^T t + a * p

   where ``p`` is uniform over the pre-trusted set and ``a`` the damping
   weight.

Benchmark C2 reproduces the paper's critique: EigenTrust produces *false
negatives* (honest peers with little traffic get ~zero trust) and *false
positives* (colluders inflate each other above honest peers).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

import numpy as np

from .base import ReputationMechanism

__all__ = ["EigenTrustMechanism"]


class EigenTrustMechanism(ReputationMechanism):
    """Full EigenTrust with pre-trusted peers and power iteration."""

    name = "eigentrust"

    def __init__(self, pre_trusted: Optional[Iterable[str]] = None,
                 damping: float = 0.15, max_iterations: int = 100,
                 tolerance: float = 1e-10, auto_refresh: bool = True):
        if not 0.0 <= damping <= 1.0:
            raise ValueError(f"damping must be in [0,1], got {damping}")
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        self._pre_trusted: Set[str] = set(pre_trusted or ())
        self._damping = damping
        self._max_iterations = max_iterations
        self._tolerance = tolerance
        # s_ij accumulators: (i, j) -> satisfaction sum.
        self._local: Dict[Tuple[str, str], float] = {}
        self._pending: Dict[Tuple[str, str, str], float] = {}
        self._users: Set[str] = set()
        self._scores: Dict[str, float] = {}
        self._iterations_used = 0
        self._auto_refresh = auto_refresh
        self._dirty = True

    # ------------------------------------------------------------------ #
    # Signals                                                            #
    # ------------------------------------------------------------------ #

    def record_download(self, downloader: str, uploader: str, file_id: str,
                        size_bytes: float, timestamp: float = 0.0) -> None:
        """A transfer happened; satisfaction arrives with the later vote.

        Until the downloader evaluates the file the transaction is *pending*
        and contributes a mildly positive default (an un-evaluated download
        is weak evidence of service).
        """
        self._users.update((downloader, uploader))
        self._pending[(downloader, uploader, file_id)] = 0.5
        self._dirty = True

    def record_vote(self, voter: str, file_id: str, vote: float,
                    timestamp: float = 0.0) -> None:
        """Resolve any pending transaction on this file into +/- satisfaction.

        EigenTrust's ``sat/unsat`` maps from the vote: >= 0.5 counts as a
        satisfactory transaction (+1), below as unsatisfactory (-1).
        """
        resolved = [key for key in self._pending
                    if key[0] == voter and key[2] == file_id]
        for key in resolved:
            self._pending.pop(key)
            _, uploader, _ = key
            delta = 1.0 if vote >= 0.5 else -1.0
            pair = (voter, uploader)
            self._local[pair] = self._local.get(pair, 0.0) + delta
            self._dirty = True

    def record_retention(self, user: str, file_id: str,
                         retention_seconds: float,
                         timestamp: float = 0.0) -> None:
        """Ignored: canonical EigenTrust uses transaction ratings only."""

    # ------------------------------------------------------------------ #
    # Computation                                                        #
    # ------------------------------------------------------------------ #

    def set_pre_trusted(self, pre_trusted: Iterable[str]) -> None:
        self._pre_trusted = set(pre_trusted)
        self._dirty = True

    def refresh(self) -> None:
        """Run the power iteration to a fixed point."""
        users = sorted(self._users)
        if not users:
            self._scores = {}
            self._dirty = False
            return
        index = {user: position for position, user in enumerate(users)}
        n = len(users)

        # Normalised local trust C (row-stochastic over positive entries).
        c = np.zeros((n, n))
        for (i, j), value in self._local.items():
            if value > 0 and i in index and j in index:
                c[index[i], index[j]] = value
        # Pending (unevaluated) transactions contribute weak evidence.
        for (i, j, _), value in self._pending.items():
            if i in index and j in index:
                c[index[i], index[j]] += value
        row_sums = c.sum(axis=1)

        pre = np.zeros(n)
        trusted = [index[u] for u in self._pre_trusted if u in index]
        if trusted:
            pre[trusted] = 1.0 / len(trusted)
        else:
            pre[:] = 1.0 / n

        # Rows with no positive local trust defer to the pre-trusted vector
        # (the standard EigenTrust fix for dangling rows).
        for row in range(n):
            if row_sums[row] > 0:
                c[row] /= row_sums[row]
            else:
                c[row] = pre

        t = pre.copy()
        a = self._damping
        iterations_used = 0
        for iteration in range(1, self._max_iterations + 1):
            t_next = (1.0 - a) * (c.T @ t) + a * pre
            delta = float(np.abs(t_next - t).sum())
            t = t_next
            iterations_used = iteration
            if delta < self._tolerance:
                break
        self._iterations_used = iterations_used
        self._scores = {user: float(t[index[user]]) for user in users}
        self._dirty = False

    # ------------------------------------------------------------------ #
    # Queries                                                            #
    # ------------------------------------------------------------------ #

    def reputation(self, observer: str, target: str) -> float:
        """EigenTrust is global: the observer is irrelevant."""
        if self._dirty and self._auto_refresh:
            self.refresh()
        return self._scores.get(target, 0.0)

    def global_scores(self) -> Dict[str, float]:
        if self._dirty and self._auto_refresh:
            self.refresh()
        return dict(self._scores)

    @property
    def iterations_used(self) -> int:
        return self._iterations_used

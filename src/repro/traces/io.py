"""Trace persistence: JSONL and CSV round-trips.

The Maze log format is one record per line; we mirror that with JSON lines
(lossless) and CSV (interoperable).  Both formats carry the ground-truth
``is_fake`` flag so persisted traces stay benchmark-scorable.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterator, Union

from .records import DownloadRecord, DownloadTrace

__all__ = ["write_jsonl", "read_jsonl", "iter_jsonl", "write_csv",
           "read_csv", "iter_csv"]

_FIELDS = ["uploader_id", "downloader_id", "timestamp", "content_hash",
           "filename", "size_bytes", "is_fake"]


def _record_to_dict(record: DownloadRecord) -> dict:
    return {
        "uploader_id": record.uploader_id,
        "downloader_id": record.downloader_id,
        "timestamp": record.timestamp,
        "content_hash": record.content_hash,
        "filename": record.filename,
        "size_bytes": record.size_bytes,
        "is_fake": record.is_fake,
    }


def _record_from_dict(data: dict) -> DownloadRecord:
    return DownloadRecord(
        uploader_id=str(data["uploader_id"]),
        downloader_id=str(data["downloader_id"]),
        timestamp=float(data["timestamp"]),
        content_hash=str(data["content_hash"]),
        filename=str(data["filename"]),
        size_bytes=float(data.get("size_bytes", 0.0)),
        is_fake=_parse_bool(data.get("is_fake", False)),
    )


def _parse_bool(value: object) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, str):
        return value.strip().lower() in ("true", "1", "yes")
    return bool(value)


def write_jsonl(trace: DownloadTrace, path: Union[str, Path]) -> None:
    """Write one JSON object per record."""
    with open(path, "w", encoding="utf-8") as handle:
        for record in trace:
            handle.write(json.dumps(_record_to_dict(record)) + "\n")


def iter_jsonl(path: Union[str, Path]) -> Iterator[DownloadRecord]:
    """Stream records written by :func:`write_jsonl`, one at a time.

    A generator, so consumers that only need one pass (statistics,
    filtering) never hold the whole trace; blank lines are ignored.
    """
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield _record_from_dict(json.loads(line))


def read_jsonl(path: Union[str, Path]) -> DownloadTrace:
    """Read a trace written by :func:`write_jsonl` (blank lines ignored)."""
    trace = DownloadTrace()
    for record in iter_jsonl(path):
        trace.append(record)
    return trace


def write_csv(trace: DownloadTrace, path: Union[str, Path]) -> None:
    """Write a header row plus one CSV row per record."""
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=_FIELDS)
        writer.writeheader()
        for record in trace:
            writer.writerow(_record_to_dict(record))


def iter_csv(path: Union[str, Path]) -> Iterator[DownloadRecord]:
    """Stream records written by :func:`write_csv`, one at a time."""
    with open(path, "r", encoding="utf-8", newline="") as handle:
        for row in csv.DictReader(handle):
            yield _record_from_dict(row)


def read_csv(path: Union[str, Path]) -> DownloadTrace:
    """Read a trace written by :func:`write_csv`."""
    trace = DownloadTrace()
    for record in iter_csv(path):
        trace.append(record)
    return trace

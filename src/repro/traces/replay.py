"""Figure 1 replay: request coverage under partial evaluation coverage.

The paper's experiment: "We first set the evaluation coverage to be k%,
meaning each user will evaluate k percent of his files randomly, then replay
the downloading actions to see how many download requests will be covered.
A download request is covered means a file based direct trust relationship
can be constructed from the uploader to the downloader with the files they
have evaluated."

This module replays a trace chronologically, maintaining each user's set of
evaluated files (every acquisition is evaluated with probability k), and
reports per-day coverage.  Optional flags additionally count edges from the
download-volume and user-trust dimensions, quantifying the paper's remark
that those dimensions "can also increase request coverage".
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .generator import GeneratedTrace
from .records import DownloadRecord

__all__ = ["CoveragePoint", "CoverageSeries", "CoverageReplayer"]

_DAY_SECONDS = 24 * 3600.0


@dataclass(frozen=True)
class CoveragePoint:
    """Coverage for one day of the replay."""

    day: int
    covered: int
    total: int

    @property
    def fraction(self) -> float:
        return self.covered / self.total if self.total else 0.0


@dataclass
class CoverageSeries:
    """Per-day coverage points plus whole-trace aggregates."""

    evaluation_coverage: float
    points: List[CoveragePoint] = field(default_factory=list)

    @property
    def overall(self) -> float:
        total = sum(point.total for point in self.points)
        covered = sum(point.covered for point in self.points)
        return covered / total if total else 0.0

    def fractions(self) -> List[float]:
        return [point.fraction for point in self.points]

    def steady_state(self, skip_days: int = 5) -> float:
        """Coverage averaged after a warm-up period (evaluations accumulate)."""
        tail = self.points[skip_days:] or self.points
        total = sum(point.total for point in tail)
        covered = sum(point.covered for point in tail)
        return covered / total if total else 0.0


class CoverageReplayer:
    """Replays a generated trace and measures request coverage.

    ``evaluation_coverage`` is the paper's k (fraction, not percent).  With
    ``include_volume`` a request also counts as covered when the uploader
    previously downloaded well-evaluated content from the downloader
    (a DM edge uploader->downloader); with ``include_user`` each completed
    download leads the downloader to rank the uploader with probability
    ``rank_probability``, and a prior rank in either direction covers later
    requests between the pair (a UM edge).
    """

    def __init__(self, generated: GeneratedTrace,
                 evaluation_coverage: float,
                 include_volume: bool = False,
                 include_user: bool = False,
                 rank_probability: float = 0.05,
                 seed: int = 99):
        if not 0.0 <= evaluation_coverage <= 1.0:
            raise ValueError(
                f"evaluation_coverage must be in [0,1], got {evaluation_coverage}")
        if not 0.0 <= rank_probability <= 1.0:
            raise ValueError(
                f"rank_probability must be in [0,1], got {rank_probability}")
        self.generated = generated
        self.evaluation_coverage = evaluation_coverage
        self.include_volume = include_volume
        self.include_user = include_user
        self.rank_probability = rank_probability
        self.seed = seed

    # ------------------------------------------------------------------ #
    # Replay                                                             #
    # ------------------------------------------------------------------ #

    def run(self) -> CoverageSeries:
        rng = random.Random(self.seed)
        evaluated: Dict[str, Set[str]] = {}
        downloaded_from: Dict[str, Set[str]] = {}
        ranked: Set[Tuple[str, str]] = set()

        self._seed_initial_evaluations(evaluated, rng)

        per_day: Dict[int, List[int]] = {}
        for record in self.generated.trace:
            day = int(record.timestamp // _DAY_SECONDS)
            counters = per_day.setdefault(day, [0, 0])
            counters[1] += 1
            if self._is_covered(record, evaluated, downloaded_from, ranked):
                counters[0] += 1
            self._apply_record(record, evaluated, downloaded_from, ranked, rng)

        points = [CoveragePoint(day=day, covered=covered, total=total)
                  for day, (covered, total) in sorted(per_day.items())]
        return CoverageSeries(evaluation_coverage=self.evaluation_coverage,
                              points=points)

    # ------------------------------------------------------------------ #
    # Internals                                                          #
    # ------------------------------------------------------------------ #

    def _seed_initial_evaluations(self, evaluated: Dict[str, Set[str]],
                                  rng: random.Random) -> None:
        """Initial holders evaluate their seeded files with probability k."""
        for file_id, holder_ids in self.generated.initial_holdings.items():
            for user_id in holder_ids:
                if rng.random() < self.evaluation_coverage:
                    evaluated.setdefault(user_id, set()).add(file_id)

    def _is_covered(self, record: DownloadRecord,
                    evaluated: Dict[str, Set[str]],
                    downloaded_from: Dict[str, Set[str]],
                    ranked: Set[Tuple[str, str]]) -> bool:
        uploader_files = evaluated.get(record.uploader_id)
        downloader_files = evaluated.get(record.downloader_id)
        if uploader_files and downloader_files:
            small, large = ((uploader_files, downloader_files)
                            if len(uploader_files) <= len(downloader_files)
                            else (downloader_files, uploader_files))
            if any(file_id in large for file_id in small):
                return True
        # A DM edge uploader -> downloader: the uploader downloaded (and
        # evaluated) something from this downloader earlier.
        if (self.include_volume and record.downloader_id
                in downloaded_from.get(record.uploader_id, ())):
            return True
        if (self.include_user
                and ((record.uploader_id, record.downloader_id) in ranked
                     or (record.downloader_id, record.uploader_id) in ranked)):
            return True
        return False

    def _apply_record(self, record: DownloadRecord,
                      evaluated: Dict[str, Set[str]],
                      downloaded_from: Dict[str, Set[str]],
                      ranked: Set[Tuple[str, str]],
                      rng: random.Random) -> None:
        if rng.random() < self.evaluation_coverage:
            evaluated.setdefault(record.downloader_id, set()).add(
                record.content_hash)
        if self.include_volume:
            downloaded_from.setdefault(record.downloader_id, set()).add(
                record.uploader_id)
        if self.include_user and rng.random() < self.rank_probability:
            ranked.add((record.downloader_id, record.uploader_id))


def run_coverage_sweep(generated: GeneratedTrace,
                       coverages: Sequence[float],
                       include_volume: bool = False,
                       include_user: bool = False,
                       seed: int = 99) -> List[CoverageSeries]:
    """Run the Figure 1 sweep over several evaluation-coverage levels."""
    return [
        CoverageReplayer(generated, coverage, include_volume=include_volume,
                         include_user=include_user, seed=seed).run()
        for coverage in coverages
    ]

"""Maze-like download traces: generation, replay, statistics, persistence."""

from .catalog import CatalogFile, FileCatalog, zipf_weights
from .generator import GeneratedTrace, MazeTraceGenerator, TraceParameters
from .io import (iter_csv, iter_jsonl, read_csv, read_jsonl,
                 write_csv, write_jsonl)
from .records import DownloadRecord, DownloadTrace
from .replay import (CoveragePoint, CoverageReplayer, CoverageSeries,
                     run_coverage_sweep)
from .stats import (TraceStatistics, compute_statistics, gini_coefficient,
                    zipf_exponent_fit)

__all__ = [
    "CatalogFile",
    "FileCatalog",
    "zipf_weights",
    "GeneratedTrace",
    "MazeTraceGenerator",
    "TraceParameters",
    "iter_csv",
    "iter_jsonl",
    "read_csv",
    "read_jsonl",
    "write_csv",
    "write_jsonl",
    "DownloadRecord",
    "DownloadTrace",
    "CoveragePoint",
    "CoverageReplayer",
    "CoverageSeries",
    "run_coverage_sweep",
    "TraceStatistics",
    "compute_statistics",
    "gini_coefficient",
    "zipf_exponent_fit",
]

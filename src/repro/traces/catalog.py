"""Synthetic file catalog: popularity, sizes, lifetimes and fake flags.

The paper's Maze measurements (and the P2P measurement literature it cites)
pin down the shape of a real catalog:

* file *popularity* is Zipf-like — a few titles dominate downloads;
* file *sizes* are heavy-tailed (we use a log-normal, capped);
* most files have a *short life cycle* ("most files have a small life cycle
  which is also shown in [Figure] 1") — new titles appear, old ones fade;
* near popular titles, a substantial share of copies are *fake* ("nearly
  half of the files of some popular titles are fake").

The catalog assigns each file a quality in [0, 1]; fakes have low quality,
real files high.  Honest users' evaluations are noisy observations of this
quality.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["CatalogFile", "FileCatalog", "zipf_weights"]

_DAY_SECONDS = 24 * 3600.0


def zipf_weights(n: int, exponent: float = 0.8) -> List[float]:
    """Normalised Zipf weights ``w_r ~ 1 / r^exponent`` for ranks 1..n."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if exponent < 0:
        raise ValueError(f"exponent must be >= 0, got {exponent}")
    raw = [1.0 / (rank ** exponent) for rank in range(1, n + 1)]
    total = sum(raw)
    return [w / total for w in raw]


@dataclass(frozen=True)
class CatalogFile:
    """One file in the shared catalog."""

    file_id: str
    filename: str
    size_bytes: float
    #: Ground-truth quality in [0, 1]; fakes sit near 0, real files near 1.
    quality: float
    is_fake: bool
    #: Popularity weight (normalised over the catalog at birth time).
    popularity: float
    #: When the file first becomes available.
    birth_time: float
    #: When requests for the file cease (its "life cycle").
    death_time: float

    def alive_at(self, timestamp: float) -> bool:
        return self.birth_time <= timestamp < self.death_time


@dataclass
class FileCatalog:
    """A collection of catalog files supporting popularity-weighted sampling."""

    files: List[CatalogFile] = field(default_factory=list)

    @classmethod
    def generate(cls, num_files: int, rng: random.Random,
                 fake_ratio: float = 0.25,
                 zipf_exponent: float = 0.8,
                 mean_size_mb: float = 8.0,
                 trace_days: float = 30.0,
                 mean_lifetime_days: float = 10.0) -> "FileCatalog":
        """Generate a synthetic catalog.

        ``fake_ratio`` is the fraction of *titles* that are fake; because
        fakes are planted preferentially near popular titles (pollution
        targets what people search for), the fraction of fake *downloads*
        comes out similar, echoing the "nearly half of popular titles" claim
        when the ratio is pushed toward 0.5.
        """
        if num_files < 1:
            raise ValueError(f"num_files must be >= 1, got {num_files}")
        if not 0.0 <= fake_ratio <= 1.0:
            raise ValueError(f"fake_ratio must be in [0,1], got {fake_ratio}")
        weights = zipf_weights(num_files, zipf_exponent)
        horizon = trace_days * _DAY_SECONDS

        # Plant fakes alternately among popular ranks: rank order is a proxy
        # for search visibility, and polluters shadow popular titles.
        num_fakes = round(num_files * fake_ratio)
        fake_ranks = set()
        if num_fakes:
            stride = max(num_files // max(num_fakes, 1), 1)
            rank = 1  # rank 0 (the most popular title) stays real
            while len(fake_ranks) < num_fakes and rank < num_files:
                fake_ranks.add(rank)
                rank += stride
            rank = 0
            while len(fake_ranks) < num_fakes:
                if rank not in fake_ranks:
                    fake_ranks.add(rank)
                rank += 1

        files: List[CatalogFile] = []
        for rank in range(num_files):
            is_fake = rank in fake_ranks
            quality = (rng.uniform(0.0, 0.2) if is_fake
                       else rng.uniform(0.75, 1.0))
            size = min(rng.lognormvariate(0.0, 1.0) * mean_size_mb, 200.0)
            birth = rng.uniform(0.0, horizon * 0.6)
            lifetime = rng.expovariate(1.0 / (mean_lifetime_days * _DAY_SECONDS))
            files.append(CatalogFile(
                file_id=f"file-{rank:06d}",
                filename=f"title_{rank:06d}.dat",
                size_bytes=size * 1024 * 1024,
                quality=quality,
                is_fake=is_fake,
                popularity=weights[rank],
                birth_time=birth,
                death_time=min(birth + lifetime, horizon) if lifetime > 0 else birth,
            ))
        return cls(files=files)

    # ------------------------------------------------------------------ #
    # Sampling and lookup                                                #
    # ------------------------------------------------------------------ #

    def alive_at(self, timestamp: float) -> List[CatalogFile]:
        return [f for f in self.files if f.alive_at(timestamp)]

    def sample(self, rng: random.Random, timestamp: Optional[float] = None,
               k: int = 1) -> List[CatalogFile]:
        """Popularity-weighted sample (with replacement) of k files.

        When ``timestamp`` is given only files alive at that instant are
        eligible; the whole catalog is the fallback if none are.
        """
        pool = self.alive_at(timestamp) if timestamp is not None else self.files
        if not pool:
            pool = self.files
        weights = [f.popularity for f in pool]
        return rng.choices(pool, weights=weights, k=k)

    def get(self, file_id: str) -> CatalogFile:
        for catalog_file in self.files:
            if catalog_file.file_id == file_id:
                return catalog_file
        raise KeyError(file_id)

    def fake_ids(self) -> List[str]:
        return [f.file_id for f in self.files if f.is_fake]

    def real_ids(self) -> List[str]:
        return [f.file_id for f in self.files if not f.is_fake]

    def __len__(self) -> int:
        return len(self.files)

    def __iter__(self):
        return iter(self.files)

"""Synthetic Maze-like download trace generator.

Section 3.2 of the paper replays a 30-day Maze log (1.66M users, 24.6M
downloading actions, 1.17M distinct files).  That log is proprietary, so we
generate a synthetic trace reproducing the structural properties Figure 1
actually depends on:

* Zipf file popularity with short file life cycles (churn of files);
* heavy-tailed per-user activity (a few heavy downloaders, a long tail);
* user churn — users join throughout the window and some leave;
* uploaders drawn from the current *holders* of a file, so holdings (and
  hence evaluation overlap) co-evolve with the trace, exactly the coupling
  the coverage replay measures.

Everything is driven by a seeded ``random.Random`` for reproducibility, and
scales down to laptop size (defaults: 2 000 users, 150 000 actions).
"""

from __future__ import annotations

import bisect
import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from .catalog import CatalogFile, FileCatalog
from .records import DownloadRecord, DownloadTrace

__all__ = ["TraceParameters", "MazeTraceGenerator", "GeneratedTrace"]

_DAY_SECONDS = 24 * 3600.0


@dataclass(frozen=True)
class TraceParameters:
    """Knobs of the synthetic trace (defaults sized for a laptop)."""

    num_users: int = 2000
    num_files: int = 3000
    num_actions: int = 150_000
    trace_days: float = 30.0
    seed: int = 7
    fake_ratio: float = 0.2
    zipf_exponent: float = 0.8
    #: Standard deviation of the log-normal user-activity distribution;
    #: larger means heavier heavy-hitters.
    activity_sigma: float = 1.2
    #: Number of users seeded as initial holders of each file at its birth.
    initial_holders: int = 3
    #: Files each user already shares when the window opens (their library
    #: predates the log, exactly as for real Maze users).  Sampled by
    #: popularity.
    library_size: int = 0
    #: Fraction of users that leave before the end of the window.
    departure_fraction: float = 0.2

    def __post_init__(self) -> None:
        if self.num_users < 2:
            raise ValueError("num_users must be >= 2")
        if self.num_files < 1:
            raise ValueError("num_files must be >= 1")
        if self.num_actions < 0:
            raise ValueError("num_actions must be >= 0")
        if self.trace_days <= 0:
            raise ValueError("trace_days must be positive")
        if not 0.0 <= self.departure_fraction < 1.0:
            raise ValueError("departure_fraction must be in [0, 1)")
        if self.initial_holders < 1:
            raise ValueError("initial_holders must be >= 1")
        if self.library_size < 0:
            raise ValueError("library_size must be >= 0")


@dataclass
class GeneratedTrace:
    """A trace plus the ground-truth context it was generated from."""

    trace: DownloadTrace
    catalog: FileCatalog
    parameters: TraceParameters
    #: user id -> (join_time, leave_time); leave_time is the horizon for
    #: users who never leave.
    lifetimes: Dict[str, tuple] = field(default_factory=dict)
    #: file id -> user ids seeded as holders at the file's birth.
    initial_holdings: Dict[str, List[str]] = field(default_factory=dict)


class _AliveFileSampler:
    """Popularity-weighted sampling over the files alive at a moving time.

    The generator visits timestamps in ascending order, so the alive set
    changes only at file birth/death events; cumulative weights are rebuilt
    only then, making each sample O(log n) instead of O(n).
    """

    def __init__(self, catalog: FileCatalog):
        self._births = sorted(catalog.files, key=lambda f: f.birth_time)
        self._deaths = sorted(catalog.files, key=lambda f: f.death_time)
        self._birth_index = 0
        self._death_index = 0
        self._alive: Dict[str, CatalogFile] = {}
        self._pool: List[CatalogFile] = []
        self._cumulative: List[float] = []
        self._dirty = True
        self._fallback = list(catalog.files)

    def advance_to(self, timestamp: float) -> None:
        while (self._birth_index < len(self._births)
               and self._births[self._birth_index].birth_time <= timestamp):
            catalog_file = self._births[self._birth_index]
            self._alive[catalog_file.file_id] = catalog_file
            self._birth_index += 1
            self._dirty = True
        while (self._death_index < len(self._deaths)
               and self._deaths[self._death_index].death_time <= timestamp):
            catalog_file = self._deaths[self._death_index]
            self._alive.pop(catalog_file.file_id, None)
            self._death_index += 1
            self._dirty = True

    def sample(self, rng: random.Random) -> CatalogFile:
        if self._dirty:
            self._pool = sorted(self._alive.values(),
                                key=lambda f: f.file_id)
            self._cumulative = list(itertools.accumulate(
                f.popularity for f in self._pool))
            self._dirty = False
        if not self._pool:
            return rng.choice(self._fallback)
        total = self._cumulative[-1]
        position = bisect.bisect_left(self._cumulative,
                                      rng.random() * total)
        return self._pool[min(position, len(self._pool) - 1)]


class _AliveUserSampler:
    """Activity-weighted sampling over users present at a moving time.

    Same incremental trick as :class:`_AliveFileSampler`, over the users'
    (join, leave) intervals.
    """

    def __init__(self, lifetimes: Dict[str, tuple],
                 activity: Dict[str, float]):
        self._joins = sorted(lifetimes.items(), key=lambda kv: kv[1][0])
        self._leaves = sorted(lifetimes.items(), key=lambda kv: kv[1][1])
        self._activity = activity
        self._join_index = 0
        self._leave_index = 0
        self._alive: Set[str] = set()
        self._pool: List[str] = []
        self._cumulative: List[float] = []
        self._dirty = True

    def advance_to(self, timestamp: float) -> None:
        while (self._join_index < len(self._joins)
               and self._joins[self._join_index][1][0] <= timestamp):
            self._alive.add(self._joins[self._join_index][0])
            self._join_index += 1
            self._dirty = True
        while (self._leave_index < len(self._leaves)
               and self._leaves[self._leave_index][1][1] <= timestamp):
            self._alive.discard(self._leaves[self._leave_index][0])
            self._leave_index += 1
            self._dirty = True

    def alive_count(self) -> int:
        return len(self._alive)

    def sample(self, rng: random.Random) -> str:
        if self._dirty:
            self._pool = sorted(self._alive)
            self._cumulative = list(itertools.accumulate(
                self._activity[uid] for uid in self._pool))
            self._dirty = False
        total = self._cumulative[-1]
        position = bisect.bisect_left(self._cumulative,
                                      rng.random() * total)
        return self._pool[min(position, len(self._pool) - 1)]


class MazeTraceGenerator:
    """Generates :class:`GeneratedTrace` objects from :class:`TraceParameters`."""

    def __init__(self, parameters: Optional[TraceParameters] = None):
        self.parameters = parameters or TraceParameters()

    # ------------------------------------------------------------------ #
    # Generation                                                         #
    # ------------------------------------------------------------------ #

    def generate(self) -> GeneratedTrace:
        p = self.parameters
        rng = random.Random(p.seed)
        horizon = p.trace_days * _DAY_SECONDS

        catalog = FileCatalog.generate(
            p.num_files, rng, fake_ratio=p.fake_ratio,
            zipf_exponent=p.zipf_exponent, trace_days=p.trace_days)

        user_ids = [f"user-{i:06d}" for i in range(p.num_users)]
        lifetimes = self._draw_lifetimes(user_ids, horizon, rng)
        activity = {uid: rng.lognormvariate(0.0, p.activity_sigma)
                    for uid in user_ids}

        holders: Dict[str, Set[str]] = {}
        initial_holdings: Dict[str, List[str]] = {}
        for catalog_file in catalog:
            seeded = self._seed_holders(catalog_file, user_ids, lifetimes, rng)
            holders[catalog_file.file_id] = set(seeded)
            initial_holdings[catalog_file.file_id] = seeded
        if p.library_size > 0:
            self._seed_libraries(catalog, user_ids, holders,
                                 initial_holdings, rng)

        timestamps = sorted(self._draw_timestamp(horizon, rng)
                            for _ in range(p.num_actions))
        file_sampler = _AliveFileSampler(catalog)
        user_sampler = _AliveUserSampler(lifetimes, activity)
        trace = DownloadTrace()
        for timestamp in timestamps:
            file_sampler.advance_to(timestamp)
            user_sampler.advance_to(timestamp)
            record = self._generate_action(
                timestamp, file_sampler, user_sampler, holders, lifetimes, rng)
            if record is not None:
                trace.append(record)
                holders[record.content_hash].add(record.downloader_id)
        return GeneratedTrace(trace=trace, catalog=catalog, parameters=p,
                              lifetimes=lifetimes,
                              initial_holdings=initial_holdings)

    # ------------------------------------------------------------------ #
    # Internals                                                          #
    # ------------------------------------------------------------------ #

    def _draw_lifetimes(self, user_ids: Sequence[str], horizon: float,
                        rng: random.Random) -> Dict[str, tuple]:
        """Join times spread over the first 40% of the window; some leave."""
        lifetimes: Dict[str, tuple] = {}
        for uid in user_ids:
            join = rng.uniform(0.0, horizon * 0.4)
            leave = (rng.uniform(join + horizon * 0.1, horizon)
                     if rng.random() < self.parameters.departure_fraction
                     else horizon)
            lifetimes[uid] = (join, leave)
        return lifetimes

    def _seed_holders(self, catalog_file: CatalogFile,
                      user_ids: Sequence[str], lifetimes: Dict[str, tuple],
                      rng: random.Random) -> List[str]:
        """Pick initial holders present when the file is born."""
        eligible = [uid for uid in user_ids
                    if lifetimes[uid][0] <= catalog_file.birth_time < lifetimes[uid][1]]
        if not eligible:
            eligible = list(user_ids)
        k = min(self.parameters.initial_holders, len(eligible))
        return rng.sample(eligible, k)

    def _seed_libraries(self, catalog: FileCatalog,
                        user_ids: Sequence[str],
                        holders: Dict[str, Set[str]],
                        initial_holdings: Dict[str, List[str]],
                        rng: random.Random) -> None:
        """Give each user a popularity-sampled pre-existing library."""
        pool = sorted(catalog.files, key=lambda f: f.file_id)
        weights = [f.popularity for f in pool]
        cumulative = list(itertools.accumulate(weights))
        total = cumulative[-1]
        for uid in user_ids:
            picked: Set[str] = set()
            attempts = 0
            while (len(picked) < self.parameters.library_size
                   and attempts < self.parameters.library_size * 8):
                attempts += 1
                position = bisect.bisect_left(cumulative,
                                              rng.random() * total)
                catalog_file = pool[min(position, len(pool) - 1)]
                if catalog_file.file_id in picked:
                    continue
                picked.add(catalog_file.file_id)
                if uid not in holders[catalog_file.file_id]:
                    holders[catalog_file.file_id].add(uid)
                    initial_holdings[catalog_file.file_id].append(uid)

    @staticmethod
    def _draw_timestamp(horizon: float, rng: random.Random) -> float:
        """Uniform day, diurnal hour profile (evening-heavy, as in Maze)."""
        day = rng.uniform(0.0, horizon / _DAY_SECONDS)
        day_floor = int(day)
        # Two-component mixture: 70% of actions in the 12h evening block.
        hour = (rng.uniform(12.0, 24.0) if rng.random() < 0.7
                else rng.uniform(0.0, 12.0))
        timestamp = day_floor * _DAY_SECONDS + hour * 3600.0
        return min(timestamp, horizon - 1.0)

    def _generate_action(self, timestamp: float,
                         file_sampler: "_AliveFileSampler",
                         user_sampler: "_AliveUserSampler",
                         holders: Dict[str, Set[str]],
                         lifetimes: Dict[str, tuple],
                         rng: random.Random) -> Optional[DownloadRecord]:
        """One download action, or None when no feasible pairing exists."""
        if user_sampler.alive_count() < 2:
            return None

        for _ in range(8):  # retry a few times on infeasible picks
            catalog_file = file_sampler.sample(rng)
            candidates = [uid for uid in holders[catalog_file.file_id]
                          if lifetimes[uid][0] <= timestamp < lifetimes[uid][1]]
            if not candidates:
                continue
            uploader = rng.choice(sorted(candidates))
            downloader = user_sampler.sample(rng)
            if downloader == uploader:
                continue
            if downloader in holders[catalog_file.file_id]:
                continue
            return DownloadRecord(
                uploader_id=uploader,
                downloader_id=downloader,
                timestamp=timestamp,
                content_hash=catalog_file.file_id,
                filename=catalog_file.filename,
                size_bytes=catalog_file.size_bytes,
                is_fake=catalog_file.is_fake,
            )
        return None

"""Download-log records matching the Maze log schema of Section 3.2.

"A log server is used to record every downloading action and each log
contains uploading user-id, downloading user-id, global time, files content
hash, and filename."  We add the transferred size (needed by Eq. 4 and
available in any real deployment) and a ground-truth ``is_fake`` flag the
*mechanisms never see* — it exists only so the benchmarks can score
detection quality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List

from ..obs.stats import mean

__all__ = ["DownloadRecord", "DownloadTrace"]


@dataclass(frozen=True)
class DownloadRecord:
    """One downloading action from the (synthetic) Maze log."""

    uploader_id: str
    downloader_id: str
    timestamp: float
    content_hash: str
    filename: str
    size_bytes: float = 0.0
    #: Ground truth, hidden from the mechanisms; benchmark scoring only.
    is_fake: bool = False

    def __post_init__(self) -> None:
        if self.uploader_id == self.downloader_id:
            raise ValueError("uploader and downloader must differ")
        if self.timestamp < 0:
            raise ValueError(f"timestamp must be >= 0, got {self.timestamp}")
        if self.size_bytes < 0:
            raise ValueError(f"size_bytes must be >= 0, got {self.size_bytes}")


@dataclass
class DownloadTrace:
    """An ordered collection of download records plus summary accessors."""

    records: List[DownloadRecord] = field(default_factory=list)

    def append(self, record: DownloadRecord) -> None:
        self.records.append(record)

    def extend(self, records: Iterable[DownloadRecord]) -> None:
        self.records.extend(records)

    def sort_by_time(self) -> None:
        self.records.sort(key=lambda r: (r.timestamp, r.downloader_id,
                                         r.uploader_id, r.content_hash))

    # ------------------------------------------------------------------ #
    # Summary accessors                                                  #
    # ------------------------------------------------------------------ #

    def users(self) -> List[str]:
        """All user ids appearing as uploader or downloader, sorted."""
        ids = set()
        for record in self.records:
            ids.add(record.uploader_id)
            ids.add(record.downloader_id)
        return sorted(ids)

    def files(self) -> List[str]:
        """All content hashes, sorted."""
        return sorted({record.content_hash for record in self.records})

    def duration(self) -> float:
        """Span between first and last record (0 for empty traces)."""
        if not self.records:
            return 0.0
        times = [record.timestamp for record in self.records]
        return max(times) - min(times)

    def downloads_of(self, downloader_id: str) -> List[DownloadRecord]:
        return [r for r in self.records if r.downloader_id == downloader_id]

    def uploads_of(self, uploader_id: str) -> List[DownloadRecord]:
        return [r for r in self.records if r.uploader_id == uploader_id]

    def fake_fraction(self) -> float:
        """Ground-truth fraction of downloads that delivered a fake file."""
        return mean(float(r.is_fake) for r in self.records)

    def window(self, start: float, end: float) -> "DownloadTrace":
        """Records with ``start <= timestamp < end`` (a day slice, etc.)."""
        return DownloadTrace([r for r in self.records
                              if start <= r.timestamp < end])

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[DownloadRecord]:
        return iter(self.records)

    def __getitem__(self, index: int) -> DownloadRecord:
        return self.records[index]

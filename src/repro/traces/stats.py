"""Trace statistics: validate that synthetic traces look Maze-like.

The generator is only a faithful substitute for the proprietary Maze log if
its marginals have the right shape; this module computes the checks the
tests assert on (Zipf-like popularity, heavy-tailed activity, file life
cycles, per-day volume).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Sequence

from .records import DownloadTrace

__all__ = ["TraceStatistics", "compute_statistics", "zipf_exponent_fit",
           "gini_coefficient"]

_DAY_SECONDS = 24 * 3600.0


def zipf_exponent_fit(counts: Sequence[int]) -> float:
    """Least-squares slope of log(count) vs. log(rank) (negated).

    For a Zipf law ``count_r ~ r^-s`` the fit returns ``s``.  Requires at
    least two distinct positive counts.
    """
    positive = sorted((c for c in counts if c > 0), reverse=True)
    if len(positive) < 2:
        raise ValueError("need at least two positive counts for a Zipf fit")
    xs = [math.log(rank) for rank in range(1, len(positive) + 1)]
    ys = [math.log(count) for count in positive]
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        raise ValueError("degenerate rank axis")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    return -(sxy / sxx)


def gini_coefficient(values: Sequence[float]) -> float:
    """Gini coefficient of a non-negative distribution (0=equal, ->1=skewed)."""
    data = sorted(v for v in values if v >= 0)
    if not data:
        return 0.0
    total = sum(data)
    if total == 0:
        return 0.0
    n = len(data)
    weighted = sum((index + 1) * value for index, value in enumerate(data))
    gini = (2.0 * weighted) / (n * total) - (n + 1.0) / n
    return min(max(gini, 0.0), 1.0)


@dataclass(frozen=True)
class TraceStatistics:
    """Summary statistics of a download trace."""

    num_records: int
    num_users: int
    num_files: int
    duration_days: float
    downloads_per_day: Dict[int, int]
    popularity_zipf_exponent: float
    downloader_activity_gini: float
    uploader_activity_gini: float
    fake_download_fraction: float
    median_file_distinct_days: float


def compute_statistics(trace: DownloadTrace) -> TraceStatistics:
    """Compute :class:`TraceStatistics` for ``trace`` (must be non-empty)."""
    if not len(trace):
        raise ValueError("cannot compute statistics of an empty trace")

    file_counts = Counter(record.content_hash for record in trace)
    downloader_counts = Counter(record.downloader_id for record in trace)
    uploader_counts = Counter(record.uploader_id for record in trace)
    per_day: Counter = Counter(int(record.timestamp // _DAY_SECONDS)
                               for record in trace)

    file_days: Dict[str, set] = {}
    for record in trace:
        file_days.setdefault(record.content_hash, set()).add(
            int(record.timestamp // _DAY_SECONDS))
    distinct_days = sorted(len(days) for days in file_days.values())
    median_days = float(distinct_days[len(distinct_days) // 2])

    return TraceStatistics(
        num_records=len(trace),
        num_users=len(trace.users()),
        num_files=len(file_counts),
        duration_days=trace.duration() / _DAY_SECONDS,
        downloads_per_day=dict(per_day),
        popularity_zipf_exponent=zipf_exponent_fit(list(file_counts.values())),
        downloader_activity_gini=gini_coefficient(
            list(downloader_counts.values())),
        uploader_activity_gini=gini_coefficient(list(uploader_counts.values())),
        fake_download_fraction=trace.fake_fraction(),
        median_file_distinct_days=median_days,
    )

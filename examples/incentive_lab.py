"""Incentive lab: what does each behaviour class earn?

The paper's incentive claim (Section 3.4): sharing real files, voting,
ranking and deleting fakes quickly all raise reputation, which buys queue
priority and bandwidth; free-riders and polluters end up throttled.

This example simulates a mixed population under the full mechanism and
prints a per-class report card: service received, credit earned, and how
honest observers rate each class — the numbers behind benchmark C4.

Run:  python examples/incentive_lab.py
"""

import statistics

from repro.analysis import render_table
from repro.baselines import MultiDimensionalMechanism
from repro.core import IncentiveAction, ReputationConfig
from repro.simulator import (FileSharingSimulation, ScenarioSpec,
                             SimulationConfig)

DAY = 24 * 3600.0
DURATION = 3 * DAY


def main() -> None:
    config = SimulationConfig(
        scenario=ScenarioSpec(honest=24, lazy_voters=8, free_riders=8,
                              polluters=6, honest_vote_probability=0.4),
        duration_seconds=DURATION, num_files=120, request_rate=0.03,
        seed=31)
    mechanism = MultiDimensionalMechanism(
        ReputationConfig(retention_saturation_seconds=DURATION / 3))
    simulation = FileSharingSimulation(config, mechanism)
    metrics = simulation.run()

    honest_ids = [pid for pid, peer in simulation.peers.items()
                  if peer.label == "honest"]

    def honest_view(target: str) -> float:
        return statistics.mean(
            mechanism.system.user_reputation(observer, target)
            for observer in honest_ids[:10] if observer != target)

    rows = []
    for label in metrics.class_labels():
        members = [pid for pid, peer in simulation.peers.items()
                   if peer.label == label]
        stats = metrics.stats_for(label)
        credit = statistics.mean(
            mechanism.system.credits.credit(pid) for pid in members)
        uploads = sum(mechanism.system.credits.action_count(
            pid, IncentiveAction.UPLOAD_REAL_FILE) for pid in members)
        votes = sum(mechanism.system.credits.action_count(
            pid, IncentiveAction.VOTE) for pid in members)
        reputation = statistics.mean(honest_view(pid) for pid in members)
        rows.append([
            label, len(members),
            stats.mean_bandwidth / 1024.0,
            stats.mean_wait,
            credit,
            uploads,
            votes,
            reputation * 1000,
        ])

    print(render_table(
        ["class", "peers", "bandwidth (KB/s)", "wait (s)", "mean credit",
         "credited uploads", "votes cast", "honest-view RM (x1000)"],
        rows, title=("Incentive lab: per-class outcomes after "
                     "3 simulated days"), precision=1))

    print("\nReading guide: honest sharers and (sharing) lazy voters get "
          "the fast lane;\nfree-riders earn no upload credit and polluters "
          "end up blacklisted and throttled.")


if __name__ == "__main__":
    main()

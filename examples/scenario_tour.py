"""Scenario tour: every named scenario under three mechanisms.

Runs the library's preset worlds (`repro.simulator.scenarios`) under
no-reputation, EigenTrust and the paper's multi-dimensional system, and
prints one comparison table — a quick way to see where each mechanism
helps, and by how much.

Run:  python examples/scenario_tour.py            (~1 minute)
      python examples/scenario_tour.py --quick    (smaller worlds)
"""

import sys

from repro.analysis import render_table
from repro.baselines import (EigenTrustMechanism, MultiDimensionalMechanism,
                             NullMechanism)
from repro.core import ReputationConfig
from repro.simulator import SCENARIOS, FileSharingSimulation, SimulationConfig


def shrink(config: SimulationConfig) -> SimulationConfig:
    """Quarter-scale variant for --quick runs."""
    return SimulationConfig(
        scenario=config.scenario,
        duration_seconds=config.duration_seconds / 4,
        num_files=max(config.num_files // 2, 30),
        fake_ratio=config.fake_ratio,
        request_rate=config.request_rate,
        seed=config.seed,
        churn=config.churn,
    )


def make_mechanism(name: str, duration: float):
    if name == "null":
        return NullMechanism()
    if name == "eigentrust":
        return EigenTrustMechanism(auto_refresh=False)
    return MultiDimensionalMechanism(
        ReputationConfig(retention_saturation_seconds=duration / 3))


def main() -> None:
    quick = "--quick" in sys.argv
    rows = []
    for scenario_name in sorted(SCENARIOS):
        config = SCENARIOS[scenario_name](42)
        if quick:
            config = shrink(config)
        for mechanism_name in ("null", "eigentrust", "multidimensional"):
            mechanism = make_mechanism(mechanism_name,
                                       config.duration_seconds)
            metrics = FileSharingSimulation(config, mechanism).run()
            blocked = sum(stats.fakes_blocked
                          for stats in metrics.per_class.values())
            real = sum(stats.real_downloads
                       for stats in metrics.per_class.values())
            rows.append([scenario_name, mechanism_name,
                         metrics.overall_fake_fraction, blocked, real])
        rows.append(["", "", None, None, None])  # visual separator

    print(render_table(
        ["scenario", "mechanism", "fake fraction", "fakes blocked",
         "real downloads"], rows[:-1],
        title="Scenario tour: pollution outcome by mechanism"))


if __name__ == "__main__":
    main()

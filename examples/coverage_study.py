"""Coverage study: regenerate the paper's Figure 1 on a synthetic trace.

Generates a Maze-like 30-day download trace (Zipf popularity, heavy-tailed
activity, churn, pre-existing libraries), then replays it at several
evaluation-coverage levels and prints the per-week coverage series plus the
Tit-for-Tat baseline — the two numbers whose gap motivates the whole paper.

Run:  python examples/coverage_study.py          (about half a minute)
      python examples/coverage_study.py --small  (a few seconds)
"""

import sys

from repro.analysis import render_series, render_table, tit_for_tat_coverage
from repro.traces import (CoverageReplayer, MazeTraceGenerator,
                          TraceParameters, compute_statistics)

DAY = 24 * 3600.0


def main() -> None:
    small = "--small" in sys.argv
    parameters = TraceParameters(
        num_users=400 if small else 2000,
        num_files=500 if small else 2000,
        num_actions=4000 if small else 20_000,
        trace_days=30.0,
        library_size=30 if small else 75,
        seed=1,
    )
    print("generating trace ...")
    generated = MazeTraceGenerator(parameters).generate()
    statistics = compute_statistics(generated.trace)
    print(f"  {statistics.num_records} downloads, {statistics.num_users} users, "
          f"{statistics.num_files} files over "
          f"{statistics.duration_days:.0f} days")
    print(f"  popularity Zipf exponent ~{statistics.popularity_zipf_exponent:.2f}, "
          f"downloader Gini {statistics.downloader_activity_gini:.2f}")

    coverages = [0.05, 0.20, 1.00]
    weekly = {}
    overall_rows = []
    for coverage in coverages:
        series = CoverageReplayer(generated, coverage, seed=3).run()
        label = f"k={int(coverage * 100)}%"
        by_week = {}
        for point in series.points:
            by_week.setdefault(point.day // 7, [0, 0])
            by_week[point.day // 7][0] += point.covered
            by_week[point.day // 7][1] += point.total
        weekly[label] = [covered / total if total else 0.0
                         for covered, total in
                         (by_week[w] for w in sorted(by_week))]
        overall_rows.append([label, series.overall, series.steady_state()])

    weeks = [f"week{w}" for w in range(len(next(iter(weekly.values()))))]
    print()
    print(render_series(weekly, x_labels=weeks, x_header="period",
                        title="Request coverage by week (Figure 1 shape)"))
    print()
    print(render_table(["evaluation coverage", "overall", "steady-state"],
                       overall_rows, title="Summary"))

    tft = tit_for_tat_coverage(generated.trace)
    print(f"\nTit-for-Tat private-history coverage on the same trace: "
          f"{tft:.1%}  (the paper reports ~2% on Maze)")


if __name__ == "__main__":
    main()

"""Client restart: persist trust state and pick up where you left off.

A real P2P client accumulates months of trust state; losing it on restart
would reset every relationship to "stranger".  This example builds a
reputation system, saves it with ``save_system``, "restarts" by loading it
into a fresh process state, and shows that reputations, judgements and
service levels survive — then keeps learning on top of the restored state.

Run:  python examples/client_restart.py
"""

import tempfile
from pathlib import Path

from repro.core import (MultiDimensionalReputationSystem, ReputationConfig,
                        explain_reputation, load_system, save_system)

DAY = 24 * 3600.0


def build_original() -> MultiDimensionalReputationSystem:
    system = MultiDimensionalReputationSystem(
        ReputationConfig(multitrust_steps=1))
    for file_id, quality in (("album-1", 0.9), ("album-2", 0.85),
                             ("fake-hit", 0.05)):
        system.record_retention("me", file_id, 20 * DAY, timestamp=1.0)
        system.record_vote("me", file_id, quality, timestamp=2.0)
        system.record_retention("buddy", file_id, 18 * DAY, timestamp=1.0)
        system.record_vote("buddy", file_id, quality, timestamp=2.0)
    system.record_download("me", "buddy", "album-1", 60e6, timestamp=3.0)
    system.add_friend("me", "buddy")
    system.add_to_blacklist("me", "spammer")
    system.record_play("me", "album-2", 1.0, timestamp=4.0)
    return system


def main() -> None:
    original = build_original()
    print("before shutdown:")
    print(f"  RM(me -> buddy)    = "
          f"{original.user_reputation('me', 'buddy'):.4f}")
    judgement = original.judge_file("me", "fake-hit")
    print(f"  judge('fake-hit')  = "
          f"{'accept' if judgement.accept else 'REJECT'} "
          f"(score {judgement.reputation:.3f})")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "trust-state.json"
        save_system(original, path)
        print(f"\nsaved {path.stat().st_size} bytes of trust state; "
              f"client restarts ...\n")

        restored = load_system(path)

    print("after restart:")
    print(f"  RM(me -> buddy)    = "
          f"{restored.user_reputation('me', 'buddy'):.4f}")
    judgement = restored.judge_file("me", "fake-hit")
    print(f"  judge('fake-hit')  = "
          f"{'accept' if judgement.accept else 'REJECT'} "
          f"(score {judgement.reputation:.3f})")
    print(f"  spammer still blacklisted: "
          f"{restored.user_trust.is_blacklisted('me', 'spammer')}")

    # The restored system keeps learning.
    restored.record_download("me", "newcomer", "album-3", 40e6,
                             timestamp=5.0)
    restored.record_vote("me", "album-3", 0.9, timestamp=6.0)
    print(f"  new relationship after restart: RM(me -> newcomer) = "
          f"{restored.user_reputation('me', 'newcomer'):.4f}")

    print()
    print(explain_reputation(restored, "me", "buddy").render())


if __name__ == "__main__":
    main()

"""Tune the paper's weight values — its own future work, executed.

Section 5: "we need to do more experiments to improve the equations and
choose the weight values".  This example builds a behavioural history once
(honest cluster + polluters, downloads, votes, retention), then uses
``repro.core.tuning`` to sweep

* the Eq. 1 implicit/explicit blend (eta), scored by fake-ranking AUC, and
* the Eq. 7 dimension weights (alpha, beta, gamma), scored by how well the
  induced reputation separates honest users from polluters,

and prints the winning configurations.

Run:  python examples/tune_weights.py
"""

import random
import statistics

from repro.analysis import render_table
from repro.core import (DownloadLedger, EvaluationStore, ReputationConfig,
                        UserTrustStore, build_one_step_matrix,
                        compute_reputation_matrix, fake_ranking_objective,
                        file_reputation, separation_objective,
                        sweep_dimension_weights, sweep_eta)

DAY = 24 * 3600.0
HONEST = [f"h{index:02d}" for index in range(12)]
POLLUTERS = [f"p{index:02d}" for index in range(4)]
FILES = {f"file-{index:02d}": (index % 4 != 0) for index in range(40)}
# value True = real, False = fake.


def build_history(config: ReputationConfig):
    """One fixed behavioural history, re-interpreted under ``config``."""
    rng = random.Random(99)
    evaluations = EvaluationStore(config=config)
    ledger = DownloadLedger()
    user_trust = UserTrustStore()
    for file_id, is_real in FILES.items():
        quality = 0.9 if is_real else 0.1
        for user in HONEST:
            if rng.random() < 0.6:
                retention = (20 * DAY if is_real else 0.5 * DAY)
                evaluations.record_retention(user, file_id, retention)
                if rng.random() < 0.4:
                    evaluations.record_vote(
                        user, file_id,
                        min(max(quality + rng.gauss(0, 0.1), 0.0), 1.0))
        for user in POLLUTERS:
            if rng.random() < 0.6:
                evaluations.record_retention(user, file_id, 20 * DAY)
                evaluations.record_vote(user, file_id, 1.0 - quality)
    for index, user in enumerate(HONEST):
        uploader = HONEST[(index + 1) % len(HONEST)]
        file_id = f"file-{(index * 3) % 40:02d}"
        ledger.record_download(user, uploader, file_id, 50e6)
        if rng.random() < 0.3:
            user_trust.rate(user, uploader, 0.9)
    return evaluations, ledger, user_trust


def reputation_for(config: ReputationConfig):
    evaluations, ledger, user_trust = build_history(config)
    one_step = build_one_step_matrix(evaluations, ledger, user_trust, config)
    return compute_reputation_matrix(one_step, config=config), evaluations


def main() -> None:
    # --- Eq. 1 sweep: eta scored by fake-ranking AUC ------------------- #
    def score_files(config):
        reputation, evaluations = reputation_for(config)
        scores = {}
        for file_id in FILES:
            per_observer = []
            for observer in HONEST[:6]:
                value = file_reputation(reputation, observer,
                                        evaluations.file_evaluations(file_id))
                if value is not None:
                    per_observer.append(value)
            if per_observer:
                scores[file_id] = statistics.mean(per_observer)
        return scores

    ground_truth = {file_id: not is_real for file_id, is_real in FILES.items()}
    eta_result = sweep_eta(fake_ranking_objective(score_files, ground_truth),
                           steps=5)
    print(render_table(
        ["eta", "rho", "fake-ranking AUC"],
        [[p.config.eta, p.config.rho, p.score] for p in eta_result.points],
        title="Eq. 1 sweep (choose eta)"))
    print(f"best eta = {eta_result.best_config.eta:.2f} "
          f"(AUC {eta_result.best_score:.3f})\n")

    # --- Eq. 7 sweep: weights scored by honest/polluter separation ----- #
    objective = separation_objective(
        lambda config: reputation_for(config)[0],
        observers=HONEST[:6], good=HONEST, bad=POLLUTERS)
    weight_result = sweep_dimension_weights(objective, resolution=4)
    top = sorted(weight_result.points, key=lambda p: -p.score)[:5]
    print(render_table(
        ["alpha (FM)", "beta (DM)", "gamma (UM)", "separation"],
        [[p.config.alpha, p.config.beta, p.config.gamma, p.score]
         for p in top],
        title="Eq. 7 sweep (top 5 of the simplex grid)", precision=4))
    best = weight_result.best_config
    print(f"best weights: alpha={best.alpha:.2f} beta={best.beta:.2f} "
          f"gamma={best.gamma:.2f}")


if __name__ == "__main__":
    main()

"""DHT deployment: the Section 4 framework, end to end.

Walks the exact six steps of the paper's Figure 2 on a live in-process
Chord-style DHT:

1. publish a file's evaluation with its index record (signed),
2. update it by republication,
3. retrieve another file's evaluations (signatures verified),
4. compute user reputation from fetched evaluation lists,
5. compute the file's Eq. 9 reputation,
6. derive the service differentiation for a requester,

then demonstrates the two security mechanisms: signature rejection of
forged evaluations, and proactive examination catching a mimic.

Run:  python examples/dht_deployment.py
"""

import statistics

from repro.dht import (DHTNetwork, EvaluationOverlay, KeyAuthority,
                       ProactiveExaminer, attempt_forged_publication,
                       make_mimic_responder)


def main() -> None:
    overlay = EvaluationOverlay(DHTNetwork(), KeyAuthority(),
                                replication=2, record_ttl=24 * 3600.0)
    users = [f"user-{index:02d}" for index in range(48)]
    for user_id in users:
        overlay.register_user(user_id)
    print(f"DHT ring with {len(overlay.network)} nodes")

    # Step 1 — publication.  user-01..user-05 share 'concert.mp4' and
    # publish their evaluations with the index record.
    hops = []
    for index, owner in enumerate(users[1:6], start=1):
        evaluation = 0.85 + 0.02 * index
        hops.append(overlay.publish(owner, "concert.mp4",
                                    min(evaluation, 1.0), now=0.0,
                                    filename="concert.mp4",
                                    size_bytes=350e6))
    # Everyone also holds a couple of chart-toppers (overlap for Eq. 2).
    for user_id in users:
        overlay.publish(user_id, "chart-top-1", 0.9, now=0.0)
        overlay.publish(user_id, "chart-top-2", 0.8, now=0.0)
    print(f"step 1  published evaluations "
          f"(mean lookup hops {statistics.mean(hops):.1f})")

    # Step 2 — update via republication.
    refreshed = overlay.republish_all(users[1], now=3600.0)
    print(f"step 2  republished {refreshed} records for {users[1]}")

    # Step 3 — retrieval.
    requester = users[10]
    retrieved = overlay.retrieve(requester, "concert.mp4", now=3700.0)
    print(f"step 3  {requester} retrieved {len(retrieved.owners)} owners, "
          f"{len(retrieved.evaluations)} signed evaluations "
          f"({retrieved.rejected} rejected)")

    # Step 4 — user reputation from evaluation lists.
    reputation = overlay.compute_reputation_matrix(requester,
                                                   retrieved.evaluations)
    best = max(retrieved.evaluations,
               key=lambda owner: reputation.get(requester, owner))
    print(f"step 4  {requester} trusts {best} most "
          f"(RM={reputation.get(requester, best):.3f})")

    # Step 5 — file reputation (Eq. 9).
    score, _ = overlay.file_reputation(requester, "concert.mp4", now=3700.0)
    print(f"step 5  Eq. 9 reputation of concert.mp4 for {requester}: "
          f"{score:.3f}")

    # Step 6 — service differentiation.
    level = overlay.service_level(users[1], requester)
    print(f"step 6  {users[1]} grants {requester}: "
          f"offset {level.queue_offset_seconds:.1f}s, "
          f"quota {level.bandwidth_quota / 1024:.0f} KB/s")

    # Security 1 — forged publication is rejected by signatures.
    accepted = attempt_forged_publication(
        overlay, attacker_id=users[20], victim_id=users[2],
        file_id="concert.mp4", forged_evaluation=0.0, now=3800.0)
    print(f"\nsecurity  forged evaluation accepted? {accepted}")

    # Security 2 — proactive examination catches a mimic.
    overlay.set_responder(users[30], make_mimic_responder(overlay))
    examiner = ProactiveExaminer(overlay, seed=9)
    catalog = ["concert.mp4", "chart-top-1", "chart-top-2"] + [
        f"probe-file-{index}" for index in range(8)]
    honest_report = examiner.examine(users[2], catalog)
    mimic_report = examiner.examine(users[30], catalog)
    print(f"security  examination: honest {users[2]} flagged="
          f"{honest_report.flagged}, mimic {users[30]} flagged="
          f"{mimic_report.flagged}")

    print(f"\nmessage tally: {overlay.tally.snapshot()}")


if __name__ == "__main__":
    main()

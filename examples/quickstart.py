"""Quickstart: the multi-dimensional reputation system in five minutes.

Builds a tiny community by hand, feeds the three kinds of behavioural
signals into :class:`repro.core.MultiDimensionalReputationSystem`, and asks
it the three questions the paper's mechanisms answer:

1. How much should Alice trust each peer?   (Eqs. 2-8)
2. Is this file fake?                       (Eq. 9)
3. What service does each requester get?    (Section 3.4)

Run:  python examples/quickstart.py
"""

from repro.core import (MultiDimensionalReputationSystem, ReputationConfig,
                        explain_reputation)

DAY = 24 * 3600.0


def main() -> None:
    config = ReputationConfig(
        eta=0.4, rho=0.6,              # Eq. 1: implicit/explicit blend
        alpha=0.5, beta=0.3, gamma=0.2,  # Eq. 7: FM/DM/UM weights
        multitrust_steps=1,            # Eq. 8: n = 1, as chosen for Maze
    )
    system = MultiDimensionalReputationSystem(config)

    # --- Behavioural signals ------------------------------------------ #
    # Alice and Bob both keep and like the same two albums: file-based
    # trust (they evaluate alike).
    for user in ("alice", "bob"):
        system.record_retention(user, "album-1", retention_seconds=25 * DAY)
        system.record_retention(user, "album-2", retention_seconds=20 * DAY)
        system.record_vote(user, "album-1", 0.9)
        system.record_vote(user, "album-2", 0.8)

    # Alice downloaded a healthy amount of real data from Carol:
    # download-volume trust.
    system.record_download("alice", "carol", "movie-1",
                           size_bytes=700 * 1024 * 1024)
    system.record_retention("alice", "movie-1", retention_seconds=10 * DAY)
    system.record_vote("alice", "movie-1", 0.95)

    # Alice friends Dave and blacklists Mallory: user-based trust.
    system.add_friend("alice", "dave")
    system.add_to_blacklist("alice", "mallory")

    # Mallory pushes a fake and praises it; Bob catches it.
    system.record_vote("mallory", "hit-single", 1.0)
    system.record_retention("bob", "hit-single", retention_seconds=600.0)
    system.record_vote("bob", "hit-single", 0.05)
    system.record_fake_deletion("bob", "hit-single")

    # --- Question 1: user reputations --------------------------------- #
    print("Alice's view of the world (RM row):")
    for peer in ("bob", "carol", "dave", "mallory"):
        print(f"  {peer:8s} -> {system.user_reputation('alice', peer):.4f}")

    # --- Question 2: is the file fake? --------------------------------- #
    judgement = system.judge_file("alice", "hit-single")
    print(f"\n'hit-single' reputation for alice: {judgement.reputation:.3f} "
          f"(threshold {judgement.threshold}) -> "
          f"{'DOWNLOAD' if judgement.accept else 'REJECT AS FAKE'}")

    # --- Question 3: service differentiation --------------------------- #
    print("\nService alice grants each requester:")
    for requester in ("bob", "dave", "mallory", "stranger"):
        level = system.service_level("alice", requester)
        print(f"  {requester:9s} queue offset {level.queue_offset_seconds:6.1f}s, "
              f"bandwidth {level.bandwidth_quota / 1024:8.1f} KB/s")

    ordered = system.order_request_queue(
        "alice", [("stranger", 0.0), ("bob", 15.0), ("mallory", 5.0)])
    print("\nAlice's upload queue (effective order):",
          " -> ".join(requester for requester, _ in ordered))

    # --- Bonus: why? ---------------------------------------------------- #
    print()
    print(explain_reputation(system, "alice", "bob").render())


if __name__ == "__main__":
    main()

"""Pollution defense: fake-file filtering in a simulated P2P network.

Reproduces the paper's motivating scenario ("nearly half of the files of
some popular titles are fake") at laptop scale: a community of honest
peers, free-riders and polluters shares a Zipf catalog where 40% of titles
are fake.  We run the identical workload three times —

* no reputation system (the pre-reputation baseline),
* EigenTrust (global trust, no file reputation),
* the paper's multi-dimensional system (Eq. 9 filtering + incentives),

— and compare fake-download rates, blocked fakes and cleanup latency.

Run:  python examples/pollution_defense.py
"""

from repro.analysis import render_table
from repro.baselines import (EigenTrustMechanism, MultiDimensionalMechanism,
                             NullMechanism)
from repro.core import ReputationConfig
from repro.simulator import (FileSharingSimulation, ScenarioSpec,
                             SimulationConfig)

DAY = 24 * 3600.0
DURATION = 3 * DAY


def build_config() -> SimulationConfig:
    return SimulationConfig(
        scenario=ScenarioSpec(honest=30, free_riders=5, polluters=8,
                              honest_vote_probability=0.4),
        duration_seconds=DURATION,
        num_files=150,
        fake_ratio=0.4,
        request_rate=0.03,
        seed=2007,
    )


def main() -> None:
    mechanisms = [
        ("no reputation", NullMechanism()),
        ("eigentrust", EigenTrustMechanism(auto_refresh=False)),
        ("multidimensional", MultiDimensionalMechanism(
            ReputationConfig(retention_saturation_seconds=DURATION / 3))),
    ]

    rows = []
    for name, mechanism in mechanisms:
        metrics = FileSharingSimulation(build_config(), mechanism).run()
        blocked = sum(stats.fakes_blocked
                      for stats in metrics.per_class.values())
        total = sum(stats.total_downloads
                    for stats in metrics.per_class.values())
        real = sum(stats.real_downloads
                   for stats in metrics.per_class.values())
        rows.append([
            name,
            total,
            real,
            metrics.overall_fake_fraction,
            blocked,
            metrics.mean_fake_removal_latency / 3600.0,
        ])

    print(render_table(
        ["mechanism", "downloads", "real downloads", "fake fraction",
         "fakes blocked", "cleanup latency (h)"],
        rows, title="Pollution defense: 3 simulated days, 40% fake titles"))

    null_fake = rows[0][3]
    md_fake = rows[2][3]
    print(f"\nThe multi-dimensional system cut the fake-download rate "
          f"from {null_fake:.1%} to {md_fake:.1%} "
          f"({rows[2][4]} fakes blocked before download).")


if __name__ == "__main__":
    main()

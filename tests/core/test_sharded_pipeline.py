"""Unit tests for the shard-partitioned trust pipeline.

The property suite (``tests/property/test_incremental_pipeline.py``) drives
random interleavings; here we pin the deterministic surface — checksum
identity against the monolith across shard counts, worker-pool identity
against the serial sharded path, noop/invalidate semantics, the merged
dimension accessors, and the MatrixStats ledger's exactness.
"""

import random

import pytest

from repro.core import (MultiDimensionalReputationSystem, ReputationConfig,
                        ShardedTrustPipeline, TrustMatrix)

USERS = [f"u{i}" for i in range(12)]
FILES = [f"f{i}" for i in range(20)]


def _drive(system: MultiDimensionalReputationSystem, events: int = 150,
           seed: int = 9, refresh_every: int = 20) -> None:
    """A deterministic mixed workload touching every store."""
    rng = random.Random(seed)
    for step in range(events):
        user = rng.choice(USERS)
        peer = rng.choice([u for u in USERS if u != user])
        file_id = rng.choice(FILES)
        kind = step % 5
        if kind == 0:
            system.record_vote(user, file_id, rng.random(),
                               timestamp=float(step))
        elif kind == 1:
            system.record_download(user, peer, file_id,
                                   1e4 * (1 + rng.random()),
                                   timestamp=float(step))
        elif kind == 2:
            system.record_retention(user, file_id, rng.random() * 1e4,
                                    timestamp=float(step))
        elif kind == 3:
            system.record_rank(user, peer, rng.random())
        else:
            system.add_friend(user, peer)
        if step % refresh_every == refresh_every - 1:
            system.recompute()
            system.refresh_view()
    system.recompute()
    system.refresh_view()


def _system(**config_kwargs) -> MultiDimensionalReputationSystem:
    config = ReputationConfig(**config_kwargs)
    return MultiDimensionalReputationSystem(config, auto_refresh=False)


@pytest.fixture(scope="module")
def monolith():
    system = _system()
    _drive(system)
    return system


class TestChecksumIdentity:
    @pytest.mark.parametrize("shards", [1, 2, 4, 8])
    def test_sharded_matches_monolith(self, shards, monolith):
        system = _system(shards=shards)
        _drive(system)
        assert system.pipeline.checksums() == monolith.pipeline.checksums()
        assert isinstance(system.pipeline, ShardedTrustPipeline) \
            == (shards > 1)

    @pytest.mark.parametrize("weights", [(1.0, 0.0, 0.0), (0.0, 1.0, 0.0),
                                         (0.0, 0.0, 1.0)])
    def test_single_dimension_configs(self, weights):
        alpha, beta, gamma = weights
        flat = _system(alpha=alpha, beta=beta, gamma=gamma)
        sharded = _system(alpha=alpha, beta=beta, gamma=gamma, shards=4)
        _drive(flat, events=80)
        _drive(sharded, events=80)
        assert sharded.pipeline.checksums() == flat.pipeline.checksums()

    def test_multitrust_steps_and_reputation_at(self, monolith):
        flat = _system(multitrust_steps=3)
        sharded = _system(multitrust_steps=3, shards=4)
        _drive(flat, events=80)
        _drive(sharded, events=80)
        assert sharded.pipeline.checksums() == flat.pipeline.checksums()
        for steps in (1, 2, 4):
            assert sharded.pipeline.reputation_at(steps) \
                == flat.pipeline.reputation_at(steps)


class TestWorkerPoolIdentity:
    def test_pool_matches_serial(self):
        serial = _system(shards=4, shard_workers=1)
        parallel = _system(shards=4, shard_workers=2)
        try:
            _drive(serial, events=100)
            _drive(parallel, events=100)
            assert parallel.pipeline.checksums() \
                == serial.pipeline.checksums()
        finally:
            serial.close()
            parallel.close()

    def test_close_is_idempotent(self):
        system = _system(shards=2, shard_workers=2)
        _drive(system, events=30)
        system.close()
        system.close()


class TestRefreshSemantics:
    def test_noop_refresh_returns_identity(self):
        system = _system(shards=4)
        _drive(system, events=40)
        pipeline = system.pipeline
        version = pipeline.version
        before = pipeline.view()
        after = pipeline.refresh()
        assert after.trust is before.trust
        assert after.reputation is before.reputation
        assert pipeline.version == version

    def test_invalidate_forces_full_rebuild(self):
        system = _system(shards=4)
        _drive(system, events=60)
        pipeline = system.pipeline
        checksums = pipeline.checksums()
        pipeline.invalidate()
        assert pipeline.has_dirty
        pipeline.refresh()
        assert pipeline.last_stats is not None
        assert pipeline.last_stats.mode == "full"
        assert pipeline.checksums() == checksums

    def test_first_refresh_is_full(self):
        system = _system(shards=2)
        system.record_vote("u0", "f0", 0.8, timestamp=0.0)
        system.recompute()
        system.refresh_view()
        assert system.pipeline.last_stats.mode == "full"

    def test_version_increments_on_real_refreshes(self):
        system = _system(shards=2)
        pipeline = system.pipeline
        assert pipeline.version == 0
        system.record_vote("u0", "f0", 0.5, timestamp=0.0)
        system.recompute()
        system.refresh_view()
        assert pipeline.version == 1
        system.record_vote("u1", "f0", 0.7, timestamp=1.0)
        system.recompute()
        system.refresh_view()
        assert pipeline.version == 2


class TestMergedAccessors:
    def test_dimension_matrices_match_monolith(self, monolith):
        system = _system(shards=4)
        _drive(system)
        sharded_dims = system.pipeline.dimension_matrices()
        flat_dims = monolith.pipeline.dimension_matrices()
        assert set(sharded_dims) == {"file", "volume", "user"}
        for name in ("file", "volume", "user"):
            assert sharded_dims[name] == flat_dims[name], name

    def test_dimension_matrices_before_any_refresh(self):
        system = _system(shards=4)
        dims = system.pipeline.dimension_matrices()
        for matrix in dims.values():
            assert isinstance(matrix, TrustMatrix)
            assert matrix.row_ids() == []


class TestStatsLedger:
    def test_stats_exact_after_incremental_refreshes(self):
        # _verify_stats raises ContractViolation if the incrementally
        # folded counters drift from an O(entries) rescan of TM; calling
        # it directly keeps the check active without REPRO_CHECK_INVARIANTS.
        system = _system(shards=4)
        rng = random.Random(3)
        pipeline = system.pipeline
        for step in range(60):
            user = rng.choice(USERS)
            system.record_vote(user, rng.choice(FILES), rng.random(),
                               timestamp=float(step))
            if step % 10 == 9:
                system.recompute()
                system.refresh_view()
                pipeline._verify_stats()
        system.recompute()
        system.refresh_view()
        pipeline._verify_stats()

    def test_last_stats_counts_rows(self):
        system = _system(shards=4)
        _drive(system, events=50)
        stats = system.pipeline.last_stats
        assert stats is not None
        assert stats.total_rows == len(system.pipeline.trust.row_ids())
        assert stats.rows_rebuilt >= 0

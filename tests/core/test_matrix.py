"""Tests for repro.core.matrix: the sparse trust matrix."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import TrustMatrix


def matrices(max_nodes: int = 6):
    """Random sparse trust matrices over a small id universe."""
    ids = [f"n{i}" for i in range(max_nodes)]
    entry = st.tuples(st.sampled_from(ids), st.sampled_from(ids),
                      st.floats(min_value=0.001, max_value=10.0))
    return st.lists(entry, max_size=20).map(_build)


def _build(entries):
    matrix = TrustMatrix()
    for i, j, value in entries:
        matrix.set(i, j, value)
    return matrix


class TestBasicOps:
    def test_get_default_zero(self):
        assert TrustMatrix().get("a", "b") == 0.0

    def test_set_and_get(self):
        matrix = TrustMatrix()
        matrix.set("a", "b", 0.5)
        assert matrix.get("a", "b") == 0.5

    def test_setting_zero_removes_entry(self):
        matrix = TrustMatrix()
        matrix.set("a", "b", 0.5)
        matrix.set("a", "b", 0.0)
        assert matrix.entry_count() == 0
        assert not matrix.has_edge("a", "b")

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            TrustMatrix().set("a", "b", -0.1)

    def test_add_accumulates(self):
        matrix = TrustMatrix()
        matrix.add("a", "b", 0.3)
        matrix.add("a", "b", 0.2)
        assert matrix.get("a", "b") == pytest.approx(0.5)

    def test_add_clamps_at_zero(self):
        matrix = TrustMatrix()
        matrix.set("a", "b", 0.3)
        matrix.add("a", "b", -1.0)
        assert matrix.get("a", "b") == 0.0

    def test_constructor_from_mapping(self):
        matrix = TrustMatrix({"a": {"b": 1.0, "c": 2.0}})
        assert matrix.get("a", "c") == 2.0
        assert matrix.entry_count() == 2

    def test_row_returns_copy(self):
        matrix = TrustMatrix({"a": {"b": 1.0}})
        row = matrix.row("a")
        row["b"] = 99.0
        assert matrix.get("a", "b") == 1.0

    def test_node_ids_union_of_rows_and_columns(self):
        matrix = TrustMatrix({"a": {"b": 1.0}})
        assert matrix.node_ids() == ["a", "b"]

    def test_equality(self):
        assert TrustMatrix({"a": {"b": 1.0}}) == TrustMatrix({"a": {"b": 1.0}})
        assert TrustMatrix({"a": {"b": 1.0}}) != TrustMatrix()


class TestRowPatching:
    def test_replace_row_drops_stale_entries(self):
        matrix = TrustMatrix({"a": {"b": 0.5, "c": 0.5}})
        matrix.replace_row("a", {"d": 1.0})
        assert matrix.row("a") == {"d": 1.0}

    def test_replace_row_with_empty_removes_row(self):
        matrix = TrustMatrix({"a": {"b": 1.0}})
        matrix.replace_row("a", {})
        assert "a" not in matrix.row_ids()

    def test_copy_with_rows_new_identity_shared_untouched_rows(self):
        matrix = TrustMatrix({"a": {"b": 1.0}, "c": {"d": 1.0}})
        patched = matrix.copy_with_rows({"a": {"b": 0.25, "e": 0.75}})
        assert patched is not matrix
        assert patched.get("a", "e") == 0.75
        assert matrix.get("a", "e") == 0.0
        assert patched.row_view("c") == matrix.row_view("c")

    def test_copy_with_rows_empty_patch_removes_row(self):
        matrix = TrustMatrix({"a": {"b": 1.0}, "c": {"d": 1.0}})
        patched = matrix.copy_with_rows({"a": {}})
        assert "a" not in patched.row_ids()
        assert "a" in matrix.row_ids()


class TestNormalization:
    def test_rows_sum_to_one(self):
        matrix = TrustMatrix({"a": {"b": 2.0, "c": 6.0}})
        normalized = matrix.row_normalized()
        assert normalized.get("a", "b") == pytest.approx(0.25)
        assert normalized.get("a", "c") == pytest.approx(0.75)

    def test_normalization_is_eq3_shape(self):
        # Eq. 3: FM_ij = FT_ij / sum_k FT_ik.
        matrix = TrustMatrix({"i": {"j": 0.8, "k": 0.2}})
        normalized = matrix.row_normalized()
        assert sum(normalized.row("i").values()) == pytest.approx(1.0)

    def test_original_unchanged(self):
        matrix = TrustMatrix({"a": {"b": 2.0}})
        matrix.row_normalized()
        assert matrix.get("a", "b") == 2.0

    @given(matrix=matrices())
    def test_all_nonempty_rows_stochastic(self, matrix):
        normalized = matrix.row_normalized()
        for _, row in normalized.rows():
            assert sum(row.values()) == pytest.approx(1.0)


class TestWeightedSum:
    def test_eq7_combination(self):
        fm = TrustMatrix({"a": {"b": 1.0}})
        dm = TrustMatrix({"a": {"c": 1.0}})
        um = TrustMatrix({"a": {"b": 1.0}})
        tm = TrustMatrix.weighted_sum([(0.5, fm), (0.3, dm), (0.2, um)])
        assert tm.get("a", "b") == pytest.approx(0.7)
        assert tm.get("a", "c") == pytest.approx(0.3)

    def test_zero_weight_contributes_nothing(self):
        fm = TrustMatrix({"a": {"b": 1.0}})
        tm = TrustMatrix.weighted_sum([(0.0, fm)])
        assert tm.entry_count() == 0

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            TrustMatrix.weighted_sum([(-0.5, TrustMatrix())])

    def test_scaled(self):
        matrix = TrustMatrix({"a": {"b": 2.0}})
        assert matrix.scaled(0.5).get("a", "b") == pytest.approx(1.0)

    @given(matrix=matrices())
    def test_weighted_sum_of_stochastic_stays_stochastic(self, matrix):
        normalized = matrix.row_normalized()
        combined = TrustMatrix.weighted_sum(
            [(0.6, normalized), (0.4, normalized)])
        for _, row in combined.rows():
            assert sum(row.values()) == pytest.approx(1.0)


class TestMatmulAndPower:
    def test_two_step_path(self):
        matrix = TrustMatrix({"a": {"b": 1.0}, "b": {"c": 1.0}})
        squared = matrix.matmul(matrix)
        assert squared.get("a", "c") == pytest.approx(1.0)
        assert not squared.has_edge("a", "b")

    def test_power_one_is_identity_operation(self):
        matrix = TrustMatrix({"a": {"b": 0.7}})
        assert matrix.power(1) == matrix

    def test_power_matches_repeated_matmul(self):
        matrix = TrustMatrix(
            {"a": {"b": 0.5, "c": 0.5}, "b": {"a": 1.0}, "c": {"b": 1.0}})
        manual = matrix.matmul(matrix).matmul(matrix)
        assert matrix.power(3) == manual

    def test_power_zero_rejected(self):
        with pytest.raises(ValueError):
            TrustMatrix().power(0)

    @given(matrix=matrices(max_nodes=4), n=st.integers(min_value=1, max_value=4))
    def test_power_agrees_with_numpy(self, matrix, n):
        ids = matrix.node_ids()
        if not ids:
            return
        dense, _ = matrix.to_dense(ids)
        expected = np.linalg.matrix_power(dense, n)
        result, _ = matrix.power(n).to_dense(ids)
        assert np.allclose(result, expected, atol=1e-9)

    @given(matrix=matrices())
    def test_stochastic_rows_stay_substochastic_under_power(self, matrix):
        # RM = TM^n: probability mass can leak to absorbing nodes (rows
        # without outgoing edges) but never exceed 1.
        normalized = matrix.row_normalized()
        powered = normalized.power(2)
        for _, row in powered.rows():
            assert sum(row.values()) <= 1.0 + 1e-9


class TestDensity:
    def test_empty_matrix_density_zero(self):
        assert TrustMatrix().density() == 0.0

    def test_full_two_node_density(self):
        matrix = TrustMatrix({"a": {"b": 1.0}, "b": {"a": 1.0}})
        assert matrix.density() == pytest.approx(1.0)

    def test_density_over_fixed_universe(self):
        matrix = TrustMatrix({"a": {"b": 1.0}})
        # Universe of 3 nodes: 6 possible edges, 1 present.
        assert matrix.density(["a", "b", "c"]) == pytest.approx(1 / 6)

    def test_diagonal_not_counted(self):
        matrix = TrustMatrix({"a": {"a": 1.0, "b": 1.0}, "b": {"a": 1.0}})
        assert matrix.density(["a", "b"]) == pytest.approx(1.0)


class TestDenseBridge:
    def test_round_trip(self):
        matrix = TrustMatrix({"a": {"b": 0.25}, "b": {"a": 0.75}})
        dense, ids = matrix.to_dense()
        restored = TrustMatrix.from_dense(dense, ids)
        assert restored == matrix

    def test_to_dense_respects_id_order(self):
        matrix = TrustMatrix({"x": {"y": 1.0}})
        dense, ids = matrix.to_dense(["y", "x"])
        assert ids == ["y", "x"]
        assert dense[1, 0] == 1.0

    def test_from_dense_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TrustMatrix.from_dense(np.zeros((2, 2)), ["a"])

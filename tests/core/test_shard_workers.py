"""Unit tests for ShardPatchPool: bit-identity with the serial dict path.

The pool's contract is stronger than "agrees to tolerance": every row it
returns must be float-for-float identical to
:func:`~repro.core.pipeline.combine_dimension_rows` on the same job — the
worker replicates the dict path's exact IEEE-754 operation sequence.
"""

import random

import pytest

from repro.core import TrustMatrix
from repro.core.pipeline import combine_dimension_rows
from repro.core.shard_workers import ShardPatchPool


def _fragment(rows, cols, fill, seed):
    rng = random.Random(seed)
    matrix = TrustMatrix()
    for i in rows:
        for j in cols:
            if rng.random() < fill:
                matrix.set(i, j, rng.random())
    return matrix


def _job(shard, seed, n_rows=12, n_cols=15):
    rows = sorted(f"s{shard}r{i}" for i in range(n_rows))
    cols = [f"c{j}" for j in range(n_cols)]
    dimensions = [
        (0.5, _fragment(rows, cols, 0.4, seed)),
        (0.3, _fragment(rows, cols, 0.2, seed + 1)),
        (0.2, _fragment(rows, cols, 0.7, seed + 2)),
    ]
    return (shard, rows, dimensions)


@pytest.fixture(scope="module")
def pool():
    pool = ShardPatchPool(2)
    yield pool
    pool.close()


class TestValidation:
    def test_single_worker_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            ShardPatchPool(1)

    def test_empty_job_list(self, pool):
        assert pool.gather_patches([]) == []


class TestBitIdentity:
    def test_matches_serial_combine_exactly(self, pool):
        jobs = [_job(shard, seed=shard * 10) for shard in range(4)]
        patches = pool.gather_patches(jobs)
        for (shard, rows, dimensions), patch in zip(jobs, patches):
            expected = combine_dimension_rows(dimensions, rows)
            assert patch == expected, f"shard {shard}"

    def test_results_in_submission_order(self, pool):
        jobs = [_job(shard, seed=shard) for shard in (3, 0, 2)]
        patches = pool.gather_patches(jobs)
        for (shard, rows, _dims), patch in zip(jobs, patches):
            assert sorted(patch) == rows, f"shard {shard}"

    def test_job_with_all_empty_rows(self, pool):
        # No entries anywhere: the no-shared-memory path must still return
        # one (empty) row dict per requested row.
        rows = ["a", "b", "c"]
        dimensions = [(1.0, TrustMatrix())]
        patches = pool.gather_patches([(0, rows, dimensions)])
        assert patches == [{"a": {}, "b": {}, "c": {}}]

    def test_zero_weight_dimensions(self, pool):
        shard, rows, dimensions = _job(0, seed=99)
        zeroed = [(0.0, matrix) for _weight, matrix in dimensions]
        patches = pool.gather_patches([(shard, rows, zeroed)])
        assert patches[0] == combine_dimension_rows(zeroed, rows)


class TestLifecycle:
    def test_close_is_idempotent_and_pool_recreates(self):
        pool = ShardPatchPool(2)
        try:
            first = pool.gather_patches([_job(0, seed=1)])
            pool.close()
            pool.close()
            # A closed pool lazily builds a fresh one on next use.
            second = pool.gather_patches([_job(0, seed=1)])
            assert first == second
        finally:
            pool.close()

"""Tests for repro.core.multitrust: Eq. 8 and the tier machinery."""

import pytest

from repro.core import (MultiTierView, ReputationConfig, TierAssignment,
                        TrustMatrix, compute_reputation_matrix,
                        global_reputation_vector, reputation_between)


@pytest.fixture
def chain():
    """a trusts b, b trusts c, c trusts d."""
    return TrustMatrix({"a": {"b": 1.0}, "b": {"c": 1.0}, "c": {"d": 1.0}})


class TestReputationMatrix:
    def test_one_step_is_the_one_step_matrix(self, chain):
        rm = compute_reputation_matrix(chain, steps=1)
        assert rm == chain

    def test_two_steps_reach_friends_of_friends(self, chain):
        rm = compute_reputation_matrix(chain, steps=2)
        assert rm.get("a", "c") == pytest.approx(1.0)
        assert not rm.has_edge("a", "b")

    def test_config_steps_used_by_default(self, chain):
        config = ReputationConfig(multitrust_steps=3)
        rm = compute_reputation_matrix(chain, config=config)
        assert rm.get("a", "d") == pytest.approx(1.0)

    def test_explicit_steps_override_config(self, chain):
        config = ReputationConfig(multitrust_steps=3)
        rm = compute_reputation_matrix(chain, steps=1, config=config)
        assert rm == chain

    def test_reputation_between_reads_entry(self, chain):
        rm = compute_reputation_matrix(chain, steps=1)
        assert reputation_between(rm, "a", "b") == 1.0
        assert reputation_between(rm, "a", "z") == 0.0

    def test_weights_split_along_paths(self):
        matrix = TrustMatrix({"a": {"b": 0.5, "c": 0.5},
                              "b": {"d": 1.0}, "c": {"d": 1.0}})
        rm = compute_reputation_matrix(matrix, steps=2)
        # Both 2-step paths a->b->d and a->c->d combine.
        assert rm.get("a", "d") == pytest.approx(1.0)


class TestMultiTierView:
    def test_tier_one_is_direct_trust(self, chain):
        view = MultiTierView(chain, max_tier=3)
        assignment = view.assign("a", "b")
        assert assignment.tier == 1
        assert assignment.value == pytest.approx(1.0)

    def test_deeper_tiers(self, chain):
        view = MultiTierView(chain, max_tier=3)
        assert view.assign("a", "c").tier == 2
        assert view.assign("a", "d").tier == 3

    def test_unreachable_target(self, chain):
        view = MultiTierView(chain, max_tier=2)
        assignment = view.assign("a", "d")
        assert assignment.tier is None
        assert assignment.value == 0.0

    def test_first_tier_wins_over_deeper_paths(self):
        matrix = TrustMatrix({"a": {"b": 0.5, "c": 0.5}, "b": {"c": 1.0}})
        view = MultiTierView(matrix, max_tier=2)
        # c is reachable at tier 1 directly even though a 2-step path exists.
        assert view.assign("a", "c").tier == 1

    def test_tier_matrix_bounds(self, chain):
        view = MultiTierView(chain, max_tier=2)
        with pytest.raises(ValueError):
            view.tier_matrix(0)
        with pytest.raises(ValueError):
            view.tier_matrix(3)

    def test_max_tier_validation(self, chain):
        with pytest.raises(ValueError):
            MultiTierView(chain, max_tier=0)

    def test_rank_requesters_tier_then_value(self):
        """The paper's rule: smaller tier first; within a tier, higher value."""
        matrix = TrustMatrix({
            "u": {"friend_strong": 0.7, "friend_weak": 0.3},
            "friend_strong": {"fof": 1.0},
        })
        view = MultiTierView(matrix, max_tier=2)
        ranked = view.rank_requesters(
            "u", ["fof", "friend_weak", "friend_strong", "stranger"])
        assert [a.target for a in ranked] == [
            "friend_strong", "friend_weak", "fof", "stranger"]

    def test_sort_key_handles_unreachable(self):
        reachable = TierAssignment("x", tier=2, value=0.1)
        unreachable = TierAssignment("y", tier=None, value=0.0)
        assert reachable.sort_key() < unreachable.sort_key()


class TestGlobalReputation:
    def test_column_mean_projection(self):
        matrix = TrustMatrix({"a": {"c": 1.0}, "b": {"c": 0.5}})
        scores = global_reputation_vector(matrix, observers=["a", "b"])
        assert scores["c"] == pytest.approx(0.75)

    def test_default_observers_are_all_nodes(self):
        matrix = TrustMatrix({"a": {"b": 1.0}})
        scores = global_reputation_vector(matrix)
        # Observers = {a, b}; only b receives trust.
        assert scores == {"b": pytest.approx(0.5)}

    def test_empty_matrix(self):
        assert global_reputation_vector(TrustMatrix()) == {}

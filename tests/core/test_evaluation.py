"""Tests for repro.core.evaluation: Eq. 1 and the evaluation store."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (EvaluationStore, FileEvaluation, ReputationConfig,
                        implicit_from_retention)

DAY = 24 * 3600.0


class TestImplicitFromRetention:
    def test_zero_retention_gives_zero(self):
        assert implicit_from_retention(0.0, 30 * DAY) == 0.0

    def test_saturation_gives_one(self):
        assert implicit_from_retention(30 * DAY, 30 * DAY) == 1.0

    def test_beyond_saturation_clamped(self):
        assert implicit_from_retention(90 * DAY, 30 * DAY) == 1.0

    def test_linear_below_saturation(self):
        assert implicit_from_retention(15 * DAY, 30 * DAY) == pytest.approx(0.5)

    def test_negative_retention_rejected(self):
        with pytest.raises(ValueError):
            implicit_from_retention(-1.0, 30 * DAY)

    def test_nonpositive_saturation_rejected(self):
        with pytest.raises(ValueError):
            implicit_from_retention(1.0, 0.0)

    @given(retention=st.floats(min_value=0, max_value=1e9),
           saturation=st.floats(min_value=1.0, max_value=1e9))
    def test_always_in_unit_interval(self, retention, saturation):
        assert 0.0 <= implicit_from_retention(retention, saturation) <= 1.0


class TestEq1Blending:
    """E_ij = IE if no vote; IE*eta + EE*rho if voted (Eq. 1)."""

    def test_no_vote_returns_implicit(self):
        evaluation = FileEvaluation("u", "f", implicit=0.42)
        assert evaluation.value() == pytest.approx(0.42)

    def test_vote_blends_with_configured_weights(self):
        config = ReputationConfig(eta=0.4, rho=0.6)
        evaluation = FileEvaluation("u", "f", implicit=0.5, explicit=1.0)
        assert evaluation.value(config) == pytest.approx(0.5 * 0.4 + 1.0 * 0.6)

    def test_pure_explicit_config_ignores_implicit(self):
        config = ReputationConfig(eta=0.0, rho=1.0)
        evaluation = FileEvaluation("u", "f", implicit=0.1, explicit=0.9)
        assert evaluation.value(config) == pytest.approx(0.9)

    def test_out_of_range_implicit_rejected(self):
        with pytest.raises(ValueError):
            FileEvaluation("u", "f", implicit=1.5)

    def test_out_of_range_explicit_rejected(self):
        with pytest.raises(ValueError):
            FileEvaluation("u", "f", implicit=0.5, explicit=-0.1)

    @given(implicit=st.floats(min_value=0, max_value=1),
           explicit=st.floats(min_value=0, max_value=1))
    def test_blend_stays_in_unit_interval(self, implicit, explicit):
        evaluation = FileEvaluation("u", "f", implicit=implicit,
                                    explicit=explicit)
        assert 0.0 <= evaluation.value() <= 1.0

    @given(implicit=st.floats(min_value=0, max_value=1),
           explicit=st.floats(min_value=0, max_value=1))
    def test_blend_between_implicit_and_explicit(self, implicit, explicit):
        evaluation = FileEvaluation("u", "f", implicit=implicit,
                                    explicit=explicit)
        low, high = sorted((implicit, explicit))
        assert low - 1e-12 <= evaluation.value() <= high + 1e-12


class TestStoreRecording:
    def test_record_retention_sets_implicit(self):
        store = EvaluationStore()
        store.record_retention("u", "f", 15 * DAY)
        assert store.value("u", "f") == pytest.approx(0.5)

    def test_record_vote_blends(self):
        store = EvaluationStore()
        store.record_retention("u", "f", 30 * DAY)
        store.record_vote("u", "f", 0.0)
        # implicit 1.0 * 0.4 + explicit 0.0 * 0.6
        assert store.value("u", "f") == pytest.approx(0.4)

    def test_vote_without_retention_uses_zero_implicit(self):
        store = EvaluationStore()
        store.record_vote("u", "f", 1.0)
        assert store.value("u", "f") == pytest.approx(0.6)

    def test_vote_out_of_range_rejected(self):
        store = EvaluationStore()
        with pytest.raises(ValueError):
            store.record_vote("u", "f", 1.1)

    def test_retention_update_refreshes_implicit(self):
        store = EvaluationStore()
        store.record_retention("u", "f", 3 * DAY, timestamp=1.0)
        first = store.value("u", "f")
        store.record_retention("u", "f", 30 * DAY, timestamp=2.0)
        assert store.value("u", "f") > first

    def test_timestamp_never_goes_backwards(self):
        store = EvaluationStore()
        store.record_vote("u", "f", 0.5, timestamp=10.0)
        store.record_retention("u", "f", DAY, timestamp=5.0)
        assert store.get("u", "f").timestamp == 10.0

    def test_value_of_missing_evaluation_is_none(self):
        store = EvaluationStore()
        assert store.value("u", "f") is None


class TestStoreQueries:
    @pytest.fixture
    def store(self):
        store = EvaluationStore()
        store.record_vote("a", "f1", 0.9)
        store.record_vote("a", "f2", 0.8)
        store.record_vote("b", "f2", 0.7)
        store.record_vote("b", "f3", 0.1)
        return store

    def test_files_evaluated_by(self, store):
        assert store.files_evaluated_by("a") == {"f1", "f2"}

    def test_users_evaluating(self, store):
        assert store.users_evaluating("f2") == {"a", "b"}

    def test_shared_files(self, store):
        assert store.shared_files("a", "b") == {"f2"}

    def test_shared_files_with_unknown_user_empty(self, store):
        assert store.shared_files("a", "nobody") == set()

    def test_evaluation_vector(self, store):
        vector = store.evaluation_vector("a")
        assert set(vector) == {"f1", "f2"}
        assert vector["f1"] == pytest.approx(0.54)  # 0*0.4 + 0.9*0.6

    def test_file_evaluations(self, store):
        per_user = store.file_evaluations("f2")
        assert set(per_user) == {"a", "b"}

    def test_users_and_files(self, store):
        assert store.users() == {"a", "b"}
        assert store.files() == {"f1", "f2", "f3"}

    def test_len_counts_evaluations(self, store):
        assert len(store) == 4

    def test_vote_count(self, store):
        assert store.vote_count("a") == 2
        store.record_retention("a", "f9", DAY)
        assert store.vote_count("a") == 2  # retention is not a vote

    def test_iteration_yields_all(self, store):
        assert len(list(store)) == 4


class TestRemovalAndPruning:
    def test_remove_drops_both_indexes(self):
        store = EvaluationStore()
        store.record_vote("a", "f1", 0.9)
        store.remove("a", "f1")
        assert store.get("a", "f1") is None
        assert store.users_evaluating("f1") == set()
        assert store.files_evaluated_by("a") == set()

    def test_remove_missing_is_noop(self):
        store = EvaluationStore()
        store.remove("a", "f1")  # must not raise

    def test_prune_older_than_cutoff(self):
        """Section 4.3: only evaluations within an interval are preserved."""
        store = EvaluationStore()
        store.record_vote("a", "old", 0.9, timestamp=10.0)
        store.record_vote("a", "new", 0.9, timestamp=100.0)
        removed = store.prune_older_than(50.0)
        assert removed == 1
        assert store.files_evaluated_by("a") == {"new"}

    def test_prune_keeps_refreshed_evaluations(self):
        store = EvaluationStore()
        store.record_vote("a", "f", 0.9, timestamp=10.0)
        store.record_retention("a", "f", DAY, timestamp=90.0)
        assert store.prune_older_than(50.0) == 0

    @given(timestamps=st.lists(st.floats(min_value=0, max_value=1000),
                               min_size=1, max_size=30))
    def test_prune_removes_exactly_the_stale(self, timestamps):
        store = EvaluationStore()
        for index, timestamp in enumerate(timestamps):
            store.record_vote(f"u{index}", f"f{index}", 0.5,
                              timestamp=timestamp)
        cutoff = 500.0
        expected = sum(1 for t in timestamps if t < cutoff)
        assert store.prune_older_than(cutoff) == expected
        assert len(store) == len(timestamps) - expected

"""Tests for the MultiDimensionalReputationSystem facade."""

import pytest

from repro.core import (MultiDimensionalReputationSystem, ReputationConfig)

DAY = 24 * 3600.0
PURE_EXPLICIT = ReputationConfig(eta=0.0, rho=1.0)


@pytest.fixture
def system():
    return MultiDimensionalReputationSystem(PURE_EXPLICIT)


def _build_agreeing_pair(system, a="a", b="b"):
    system.record_vote(a, "f1", 0.9)
    system.record_vote(b, "f1", 0.9)
    system.record_vote(a, "f2", 0.2)
    system.record_vote(b, "f2", 0.2)


class TestIngestion:
    def test_download_feeds_volume_dimension(self, system):
        system.record_download("a", "b", "f1", 1000.0)
        system.record_vote("a", "f1", 1.0)
        tm = system.one_step_matrix()
        assert tm.get("a", "b") > 0.0

    def test_votes_feed_file_dimension(self, system):
        _build_agreeing_pair(system)
        assert system.one_step_matrix().get("a", "b") > 0.0

    def test_ranks_feed_user_dimension(self, system):
        system.record_rank("a", "b", 0.9)
        assert system.one_step_matrix().get("a", "b") > 0.0

    def test_blacklist_removes_user_edge(self, system):
        system.record_rank("a", "b", 0.9)
        system.add_to_blacklist("a", "b")
        assert system.one_step_matrix().get("a", "b") == 0.0

    def test_friend_creates_strong_edge(self, system):
        system.add_friend("a", "b")
        assert system.one_step_matrix().get("a", "b") == pytest.approx(
            PURE_EXPLICIT.gamma)

    def test_fake_deletion_zeroes_evaluation_and_credits(self, system):
        system.record_vote("a", "fake", 0.9)
        system.record_fake_deletion("a", "fake")
        assert system.evaluations.get("a", "fake").implicit == 0.0
        assert system.credits.credit("a") > 0.0

    def test_prune_before_drops_old_state(self, system):
        system.record_vote("a", "old", 0.9, timestamp=0.0)
        system.record_download("a", "b", "old", 100.0, timestamp=0.0)
        system.record_vote("a", "new", 0.9, timestamp=100.0)
        removed = system.prune_before(50.0)
        assert removed == 2
        assert system.evaluations.files_evaluated_by("a") == {"new"}


class TestCaching:
    def test_matrices_cached_between_queries(self, system):
        _build_agreeing_pair(system)
        assert system.one_step_matrix() is system.one_step_matrix()

    def test_writes_invalidate_cache(self, system):
        _build_agreeing_pair(system)
        before = system.one_step_matrix()
        system.record_vote("c", "f1", 0.9)
        assert system.one_step_matrix() is not before

    def test_manual_refresh_mode(self):
        system = MultiDimensionalReputationSystem(PURE_EXPLICIT,
                                                  auto_refresh=False)
        _build_agreeing_pair(system)
        stale = system.one_step_matrix()
        system.record_vote("c", "f1", 0.9)
        assert system.one_step_matrix() is stale  # still cached
        system.recompute()
        assert system.one_step_matrix() is not stale

    def test_reputation_matrix_with_step_override(self, system):
        system.record_rank("a", "b", 1.0)
        system.record_rank("b", "c", 1.0)
        rm2 = system.reputation_matrix(steps=2)
        assert rm2.get("a", "c") > 0.0


class TestQueries:
    def test_user_reputation_pairwise(self, system):
        _build_agreeing_pair(system)
        assert system.user_reputation("a", "b") > 0.0
        assert system.user_reputation("a", "z") == 0.0

    def test_global_reputation_projection(self, system):
        _build_agreeing_pair(system)
        scores = system.global_reputation()
        assert scores["a"] > 0.0 and scores["b"] > 0.0

    def test_judge_file_accepts_good(self, system):
        _build_agreeing_pair(system)
        system.record_vote("b", "new-file", 0.95)
        judgement = system.judge_file("a", "new-file")
        assert judgement.accept

    def test_judge_file_rejects_bad(self, system):
        _build_agreeing_pair(system)
        system.record_vote("b", "bad-file", 0.05)
        judgement = system.judge_file("a", "bad-file")
        assert not judgement.accept

    def test_judge_unknown_file_is_blind(self, system):
        judgement = system.judge_file("a", "mystery")
        assert judgement.blind

    def test_effective_reputation_adds_credit_bonus(self, system):
        _build_agreeing_pair(system)
        base = system.user_reputation("a", "b")
        # b earns credits by voting a lot.
        for index in range(10):
            system.record_vote("b", f"extra-{index}", 0.9)
        assert system.effective_reputation("a", "b") > base

    def test_service_level_rewards_reputation(self, system):
        _build_agreeing_pair(system)
        system.record_rank("a", "c", 0.1)
        good = system.service_level("a", "b")
        stranger = system.service_level("a", "z")
        assert good.bandwidth_quota > stranger.bandwidth_quota
        assert good.queue_offset_seconds > stranger.queue_offset_seconds


class TestQueueOrdering:
    def test_trusted_requester_served_first(self, system):
        _build_agreeing_pair(system)
        ordered = system.order_request_queue(
            "a", [("z", 0.0), ("b", 10.0)])
        assert [requester for requester, _ in ordered] == ["b", "z"]

    def test_fifo_without_reputation(self, system):
        ordered = system.order_request_queue(
            "a", [("y", 5.0), ("z", 0.0)])
        assert [requester for requester, _ in ordered] == ["z", "y"]


class TestTierView:
    def test_tier_view_over_current_matrix(self, system):
        system.record_rank("a", "b", 1.0)
        system.record_rank("b", "c", 1.0)
        view = system.tier_view(max_tier=2)
        assert view.assign("a", "b").tier == 1
        assert view.assign("a", "c").tier == 2

    def test_tier_view_rebuilt_for_different_depth(self, system):
        system.record_rank("a", "b", 1.0)
        view2 = system.tier_view(max_tier=2)
        view3 = system.tier_view(max_tier=3)
        assert view3.max_tier == 3
        assert view2 is not view3

"""Tests for the play-time implicit-evaluation channel (Section 1)."""

import pytest

from repro.core import (EvaluationStore, FileEvaluation,
                        MultiDimensionalReputationSystem, ReputationConfig)

DAY = 24 * 3600.0


class TestFileEvaluationPlayChannel:
    def test_play_fraction_boosts_implicit(self):
        evaluation = FileEvaluation("u", "f", implicit=0.1,
                                    play_fraction=0.8)
        assert evaluation.effective_implicit() == pytest.approx(0.8)

    def test_retention_wins_when_larger(self):
        evaluation = FileEvaluation("u", "f", implicit=0.9,
                                    play_fraction=0.2)
        assert evaluation.effective_implicit() == pytest.approx(0.9)

    def test_no_play_data_falls_back_to_retention(self):
        evaluation = FileEvaluation("u", "f", implicit=0.3)
        assert evaluation.effective_implicit() == pytest.approx(0.3)

    def test_play_feeds_eq1_blend(self):
        config = ReputationConfig(eta=0.5, rho=0.5)
        evaluation = FileEvaluation("u", "f", implicit=0.0,
                                    play_fraction=1.0, explicit=0.0)
        assert evaluation.value(config) == pytest.approx(0.5)

    def test_out_of_range_play_rejected(self):
        with pytest.raises(ValueError):
            FileEvaluation("u", "f", play_fraction=1.2)


class TestStorePlayRecording:
    def test_record_play_creates_evaluation(self):
        store = EvaluationStore()
        store.record_play("u", "movie", 0.75)
        assert store.value("u", "movie") == pytest.approx(0.75)

    def test_play_is_monotone(self):
        store = EvaluationStore()
        store.record_play("u", "movie", 0.9)
        store.record_play("u", "movie", 0.3)  # replaying less changes nothing
        assert store.get("u", "movie").play_fraction == pytest.approx(0.9)

    def test_play_combines_with_retention(self):
        store = EvaluationStore()
        store.record_retention("u", "movie", 3 * DAY)  # small implicit
        store.record_play("u", "movie", 0.95)
        evaluation = store.get("u", "movie")
        assert evaluation.effective_implicit() == pytest.approx(0.95)

    def test_invalid_play_rejected(self):
        with pytest.raises(ValueError):
            EvaluationStore().record_play("u", "f", -0.1)


class TestFacadePlayIntegration:
    def test_play_signal_builds_file_trust(self):
        """Two users who fully watched the same movies gain trust even if
        neither votes nor keeps the files long."""
        system = MultiDimensionalReputationSystem()
        for movie in ("m1", "m2"):
            system.record_play("a", movie, 1.0)
            system.record_play("b", movie, 1.0)
        assert system.user_reputation("a", "b") > 0.0

    def test_unplayed_fake_stays_distinguishable(self):
        config = ReputationConfig(eta=1.0, rho=0.0)
        system = MultiDimensionalReputationSystem(config)
        # Both watched the good movie fully; both abandoned the fake early.
        for user in ("a", "b"):
            system.record_play(user, "good", 1.0)
            system.record_play(user, "fake", 0.05)
        judgement = system.judge_file("a", "fake")
        assert not judgement.accept
        judgement = system.judge_file("a", "good")
        assert judgement.accept

"""Tests for repro.core.volume_trust: Eqs. 4-5."""

import pytest

from repro.core import (DownloadLedger, EvaluationStore, ReputationConfig,
                        build_volume_trust_matrix, valid_download_volume)

PURE_EXPLICIT = ReputationConfig(eta=0.0, rho=1.0)


class TestLedger:
    def test_record_and_list_downloads(self):
        ledger = DownloadLedger()
        ledger.record_download("a", "b", "f1", 100.0)
        ledger.record_download("a", "b", "f2", 200.0)
        assert ledger.downloads("a", "b") == [("f1", 100.0), ("f2", 200.0)]

    def test_self_download_rejected(self):
        with pytest.raises(ValueError):
            DownloadLedger().record_download("a", "a", "f", 1.0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            DownloadLedger().record_download("a", "b", "f", -1.0)

    def test_uploaders_of(self):
        ledger = DownloadLedger()
        ledger.record_download("a", "b", "f", 1.0)
        ledger.record_download("a", "c", "g", 1.0)
        assert sorted(ledger.uploaders_of("a")) == ["b", "c"]

    def test_len_counts_entries(self):
        ledger = DownloadLedger()
        ledger.record_download("a", "b", "f", 1.0)
        ledger.record_download("a", "b", "f", 1.0)
        assert len(ledger) == 2

    def test_prune_drops_old_entries(self):
        ledger = DownloadLedger()
        ledger.record_download("a", "b", "f1", 1.0, timestamp=10.0)
        ledger.record_download("a", "b", "f2", 1.0, timestamp=100.0)
        assert ledger.prune_older_than(50.0) == 1
        assert ledger.downloads("a", "b") == [("f2", 1.0)]

    def test_prune_removes_empty_pairs(self):
        ledger = DownloadLedger()
        ledger.record_download("a", "b", "f", 1.0, timestamp=0.0)
        ledger.prune_older_than(10.0)
        assert list(ledger.pairs()) == []


class TestValidDownloadVolume:
    def test_eq4_weights_size_by_evaluation(self):
        ledger = DownloadLedger()
        store = EvaluationStore(config=PURE_EXPLICIT)
        ledger.record_download("a", "b", "f1", 1000.0)
        store.record_vote("a", "f1", 0.5)
        volume = valid_download_volume(ledger, store, "a", "b")
        assert volume == pytest.approx(500.0)

    def test_unevaluated_downloads_contribute_zero(self):
        ledger = DownloadLedger()
        store = EvaluationStore(config=PURE_EXPLICIT)
        ledger.record_download("a", "b", "f1", 1000.0)
        assert valid_download_volume(ledger, store, "a", "b") == 0.0

    def test_fake_downloads_contribute_nothing(self):
        # A gigabyte judged fake (evaluation 0) adds no trust.
        ledger = DownloadLedger()
        store = EvaluationStore(config=PURE_EXPLICIT)
        ledger.record_download("a", "b", "fake", 1e9)
        store.record_vote("a", "fake", 0.0)
        assert valid_download_volume(ledger, store, "a", "b") == 0.0

    def test_sums_over_files(self):
        ledger = DownloadLedger()
        store = EvaluationStore(config=PURE_EXPLICIT)
        ledger.record_download("a", "b", "f1", 100.0)
        ledger.record_download("a", "b", "f2", 300.0)
        store.record_vote("a", "f1", 1.0)
        store.record_vote("a", "f2", 1.0)
        assert valid_download_volume(ledger, store, "a", "b") == pytest.approx(400.0)

    def test_no_history_gives_zero(self):
        assert valid_download_volume(DownloadLedger(), EvaluationStore(),
                                     "a", "b") == 0.0


class TestVolumeMatrix:
    def test_eq5_row_normalization(self):
        ledger = DownloadLedger()
        store = EvaluationStore(config=PURE_EXPLICIT)
        ledger.record_download("a", "b", "f1", 300.0)
        ledger.record_download("a", "c", "f2", 100.0)
        store.record_vote("a", "f1", 1.0)
        store.record_vote("a", "f2", 1.0)
        matrix = build_volume_trust_matrix(ledger, store, PURE_EXPLICIT)
        assert matrix.get("a", "b") == pytest.approx(0.75)
        assert matrix.get("a", "c") == pytest.approx(0.25)

    def test_zero_volume_pairs_excluded(self):
        ledger = DownloadLedger()
        store = EvaluationStore(config=PURE_EXPLICIT)
        ledger.record_download("a", "b", "f1", 300.0)
        store.record_vote("a", "f1", 0.0)
        matrix = build_volume_trust_matrix(ledger, store, PURE_EXPLICIT)
        assert matrix.entry_count() == 0

    def test_direction_is_downloader_to_uploader(self):
        ledger = DownloadLedger()
        store = EvaluationStore(config=PURE_EXPLICIT)
        ledger.record_download("a", "b", "f1", 100.0)
        store.record_vote("a", "f1", 1.0)
        matrix = build_volume_trust_matrix(ledger, store, PURE_EXPLICIT)
        assert matrix.has_edge("a", "b")
        assert not matrix.has_edge("b", "a")

    def test_empty_ledger_empty_matrix(self):
        matrix = build_volume_trust_matrix(DownloadLedger(),
                                           EvaluationStore())
        assert matrix.entry_count() == 0

"""Tests for repro.core.file_reputation: Eq. 9 and fake judgement."""

import pytest

from repro.core import (EvaluationStore, ReputationConfig, TrustMatrix,
                        file_reputation, judge_file)

PURE_EXPLICIT = ReputationConfig(eta=0.0, rho=1.0)


@pytest.fixture
def reputation():
    return TrustMatrix({"me": {"honest": 0.8, "liar": 0.2}})


class TestEq9:
    def test_weighted_average(self, reputation):
        evaluations = {"honest": 1.0, "liar": 0.0}
        score = file_reputation(reputation, "me", evaluations)
        assert score == pytest.approx(0.8)

    def test_unreachable_evaluators_give_none(self, reputation):
        score = file_reputation(reputation, "me", {"stranger": 1.0})
        assert score is None

    def test_own_evaluation_excluded(self, reputation):
        # The observer judging a file should not count himself.
        score = file_reputation(reputation, "me",
                                {"me": 0.0, "honest": 1.0})
        assert score == pytest.approx(1.0)

    def test_empty_evaluations_give_none(self, reputation):
        assert file_reputation(reputation, "me", {}) is None

    def test_single_evaluator_dominates(self, reputation):
        score = file_reputation(reputation, "me", {"honest": 0.3})
        assert score == pytest.approx(0.3)

    def test_weights_are_relative(self):
        # Doubling all reputation weights leaves Eq. 9 unchanged.
        small = TrustMatrix({"me": {"x": 0.1, "y": 0.3}})
        large = TrustMatrix({"me": {"x": 0.2, "y": 0.6}})
        evaluations = {"x": 1.0, "y": 0.0}
        assert file_reputation(small, "me", evaluations) == pytest.approx(
            file_reputation(large, "me", evaluations))


class TestJudgeFile:
    @pytest.fixture
    def store(self):
        store = EvaluationStore(config=PURE_EXPLICIT)
        store.record_vote("honest", "good-file", 0.9)
        store.record_vote("honest", "fake-file", 0.05)
        store.record_vote("liar", "fake-file", 1.0)
        return store

    def test_accepts_well_evaluated_file(self, reputation, store):
        judgement = judge_file(reputation, store, "me", "good-file",
                               config=PURE_EXPLICIT)
        assert judgement.accept
        assert not judgement.blind
        assert judgement.reputation == pytest.approx(0.9)

    def test_rejects_fake_file(self, reputation, store):
        judgement = judge_file(reputation, store, "me", "fake-file",
                               config=PURE_EXPLICIT)
        # Weighted: (0.8*0.05 + 0.2*1.0) / 1.0 = 0.24 < 0.5.
        assert not judgement.accept
        assert judgement.reputation == pytest.approx(0.24)

    def test_liar_weight_matters(self, store):
        # If the observer mistakenly trusts the liar more, the fake passes:
        # the mechanism is only as good as the trust placed in evaluators.
        reputation = TrustMatrix({"me": {"honest": 0.1, "liar": 0.9}})
        judgement = judge_file(reputation, store, "me", "fake-file",
                               config=PURE_EXPLICIT)
        assert judgement.accept

    def test_blind_judgement_defaults_to_accept(self, store):
        judgement = judge_file(TrustMatrix(), store, "me", "good-file",
                               config=PURE_EXPLICIT)
        assert judgement.blind
        assert judgement.accept
        assert judgement.reputation is None

    def test_blind_judgement_can_default_to_reject(self, store):
        judgement = judge_file(TrustMatrix(), store, "me", "good-file",
                               config=PURE_EXPLICIT, accept_when_blind=False)
        assert judgement.blind
        assert not judgement.accept

    def test_per_user_threshold(self, reputation, store):
        # "he can judge whether to download this file by the threshold set
        # by himself": a paranoid threshold rejects the good file too.
        judgement = judge_file(reputation, store, "me", "good-file",
                               threshold=0.95, config=PURE_EXPLICIT)
        assert not judgement.accept
        assert judgement.threshold == 0.95

    def test_threshold_boundary_accepts_at_equality(self, reputation, store):
        judgement = judge_file(reputation, store, "me", "good-file",
                               threshold=0.9, config=PURE_EXPLICIT)
        assert judgement.accept

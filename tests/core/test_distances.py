"""Tests for repro.core.distances: Eq. 2 similarity metrics."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (euclidean_similarity, get_similarity, kl_similarity,
                        l1_similarity)
from repro.core.distances import SIMILARITY_METRICS

unit_floats = st.floats(min_value=0.0, max_value=1.0)
vectors = st.lists(unit_floats, min_size=1, max_size=20)


def paired_vectors():
    return st.integers(min_value=1, max_value=20).flatmap(
        lambda n: st.tuples(
            st.lists(unit_floats, min_size=n, max_size=n),
            st.lists(unit_floats, min_size=n, max_size=n)))


class TestL1:
    def test_identical_vectors_give_one(self):
        assert l1_similarity([0.3, 0.7], [0.3, 0.7]) == pytest.approx(1.0)

    def test_opposite_vectors_give_zero(self):
        assert l1_similarity([0.0, 1.0], [1.0, 0.0]) == pytest.approx(0.0)

    def test_paper_formula(self):
        # FT = 1 - (1/m) * sum |E_ik - E_jk| with m = 2.
        value = l1_similarity([0.9, 0.5], [0.7, 0.1])
        assert value == pytest.approx(1.0 - (0.2 + 0.4) / 2)

    def test_single_element(self):
        assert l1_similarity([0.25], [0.75]) == pytest.approx(0.5)

    def test_empty_vectors_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            l1_similarity([], [])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            l1_similarity([0.5], [0.5, 0.5])


class TestEuclidean:
    def test_identical_vectors_give_one(self):
        assert euclidean_similarity([0.2, 0.8], [0.2, 0.8]) == pytest.approx(1.0)

    def test_opposite_vectors_give_zero(self):
        assert euclidean_similarity([1.0], [0.0]) == pytest.approx(0.0)

    def test_penalizes_one_large_disagreement_more_than_l1(self):
        # One big disagreement vs. spread-out small ones: RMS punishes the
        # concentrated error harder.
        concentrated_l1 = l1_similarity([1.0, 0.5, 0.5], [0.0, 0.5, 0.5])
        concentrated_l2 = euclidean_similarity([1.0, 0.5, 0.5], [0.0, 0.5, 0.5])
        assert concentrated_l2 < concentrated_l1


class TestKL:
    def test_identical_vectors_give_one(self):
        assert kl_similarity([0.4, 0.6], [0.4, 0.6]) == pytest.approx(1.0)

    def test_handles_extreme_evaluations(self):
        # 0 and 1 would make raw KL infinite; clamping keeps it finite.
        value = kl_similarity([0.0, 1.0], [1.0, 0.0])
        assert 0.0 <= value < 0.01

    def test_monotone_in_disagreement(self):
        close = kl_similarity([0.5], [0.6])
        far = kl_similarity([0.5], [0.9])
        assert far < close


class TestRegistry:
    def test_get_similarity_resolves_all_names(self):
        for name in ("l1", "euclidean", "kl"):
            assert get_similarity(name) is SIMILARITY_METRICS[name]

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown similarity"):
            get_similarity("cosine")


class TestSharedProperties:
    """Properties every Eq. 2-compatible similarity must satisfy."""

    @pytest.mark.parametrize("name", sorted(SIMILARITY_METRICS))
    @given(pair=paired_vectors())
    def test_range_is_unit_interval(self, name, pair):
        a, b = pair
        value = SIMILARITY_METRICS[name](a, b)
        assert 0.0 <= value <= 1.0 + 1e-12

    @pytest.mark.parametrize("name", sorted(SIMILARITY_METRICS))
    @given(vector=vectors)
    def test_self_similarity_is_one(self, name, vector):
        assert SIMILARITY_METRICS[name](vector, vector) == pytest.approx(1.0)

    @pytest.mark.parametrize("name", sorted(SIMILARITY_METRICS))
    @given(pair=paired_vectors())
    def test_symmetry(self, name, pair):
        a, b = pair
        metric = SIMILARITY_METRICS[name]
        assert metric(a, b) == pytest.approx(metric(b, a))

"""Tests for repro.core.explain: reputation decomposition."""

import pytest

from repro.core import (MultiDimensionalReputationSystem, ReputationConfig,
                        TrustPath,
                        explain_reputation)

PURE_EXPLICIT = ReputationConfig(eta=0.0, rho=1.0)


@pytest.fixture
def system():
    system = MultiDimensionalReputationSystem(PURE_EXPLICIT)
    # File evidence: a and b agree on f1.
    system.record_vote("a", "f1", 0.9)
    system.record_vote("b", "f1", 0.9)
    # Volume evidence: a downloaded validly from b.
    system.record_download("a", "b", "f1", 100e6)
    # User evidence: friendship.
    system.add_friend("a", "b")
    # A second relationship so normalisation is non-trivial.
    system.record_rank("a", "c", 0.5)
    system.record_vote("c", "f1", 0.9)
    return system


class TestDecomposition:
    def test_contributions_sum_to_direct_edge(self, system):
        explanation = explain_reputation(system, "a", "b")
        total = sum(c.contribution for c in explanation.contributions)
        assert total == pytest.approx(explanation.direct_edge)

    def test_all_three_dimensions_reported(self, system):
        explanation = explain_reputation(system, "a", "b")
        assert {c.dimension for c in explanation.contributions} == \
            {"file", "volume", "user"}

    def test_weights_match_config(self, system):
        explanation = explain_reputation(system, "a", "b")
        by_dimension = {c.dimension: c.weight
                        for c in explanation.contributions}
        assert by_dimension["file"] == PURE_EXPLICIT.alpha
        assert by_dimension["volume"] == PURE_EXPLICIT.beta
        assert by_dimension["user"] == PURE_EXPLICIT.gamma

    def test_evidence_strings_are_specific(self, system):
        explanation = explain_reputation(system, "a", "b")
        by_dimension = {c.dimension: c.evidence
                        for c in explanation.contributions}
        assert "co-evaluated" in by_dimension["file"]
        assert "MB valid volume" in by_dimension["volume"]
        assert by_dimension["user"] == "friend"

    def test_zero_weight_dimension_omitted(self):
        config = ReputationConfig(alpha=1.0, beta=0.0, gamma=0.0)
        system = MultiDimensionalReputationSystem(config)
        system.record_vote("a", "f", 0.9)
        system.record_vote("b", "f", 0.9)
        explanation = explain_reputation(system, "a", "b")
        assert {c.dimension for c in explanation.contributions} == {"file"}

    def test_stranger_has_no_evidence(self, system):
        explanation = explain_reputation(system, "a", "zzz")
        assert explanation.reputation == 0.0
        assert all(c.contribution == 0.0
                   for c in explanation.contributions)

    def test_blacklist_flagged(self, system):
        system.add_to_blacklist("a", "b")
        explanation = explain_reputation(system, "a", "b")
        assert explanation.blacklisted
        user = next(c for c in explanation.contributions
                    if c.dimension == "user")
        assert user.evidence == "blacklisted"
        assert user.value == 0.0


class TestIndirectPaths:
    def test_paths_found_through_intermediaries(self):
        system = MultiDimensionalReputationSystem(
            ReputationConfig(alpha=0.0, beta=0.0, gamma=1.0,
                             multitrust_steps=2))
        system.record_rank("a", "mid", 1.0)
        system.record_rank("mid", "far", 1.0)
        explanation = explain_reputation(system, "a", "far")
        assert explanation.reputation > 0.0
        assert explanation.direct_edge == 0.0
        assert [path.via for path in explanation.indirect_paths] == ["mid"]
        assert explanation.indirect_paths[0].mass == pytest.approx(1.0)

    def test_paths_sorted_by_mass_and_capped(self):
        system = MultiDimensionalReputationSystem(
            ReputationConfig(alpha=0.0, beta=0.0, gamma=1.0))
        for index, strength in enumerate((0.9, 0.5, 0.3, 0.1)):
            via = f"mid{index}"
            system.record_rank("a", via, strength)
            system.record_rank(via, "far", 1.0)
        explanation = explain_reputation(system, "a", "far", max_paths=2)
        assert len(explanation.indirect_paths) == 2
        assert (explanation.indirect_paths[0].mass
                >= explanation.indirect_paths[1].mass)


class TestRendering:
    def test_render_mentions_everything(self, system):
        text = explain_reputation(system, "a", "b").render()
        assert "Why does a trust b?" in text
        assert "file" in text and "volume" in text and "user" in text

    def test_render_empty_explanation(self):
        system = MultiDimensionalReputationSystem()
        text = explain_reputation(system, "x", "y").render()
        assert "no direct or indirect trust evidence" in text

    def test_render_blacklist_warning(self, system):
        system.add_to_blacklist("a", "b")
        text = explain_reputation(system, "a", "b").render()
        assert "blacklist" in text


class TestTrustPathMass:
    def test_mass_is_product_of_hops(self):
        path = TrustPath(via="m", first_hop=0.5, second_hop=0.4)
        assert path.mass == pytest.approx(0.2)

    def test_zero_hop_kills_the_path(self):
        assert TrustPath(via="m", first_hop=0.0, second_hop=0.9).mass == 0.0
        assert TrustPath(via="m", first_hop=0.9, second_hop=0.0).mass == 0.0

    def test_mass_matches_matrix_product_on_real_system(self, system):
        explanation = explain_reputation(system, "a", "b")
        matrix = system.one_step_matrix()
        for path in explanation.indirect_paths:
            assert path.first_hop == pytest.approx(
                matrix.get("a", path.via))
            assert path.second_hop == pytest.approx(
                matrix.get(path.via, "b"))
            assert path.mass == pytest.approx(
                path.first_hop * path.second_hop)

    def test_paths_never_route_through_endpoints(self, system):
        explanation = explain_reputation(system, "a", "b")
        assert all(path.via not in ("a", "b")
                   for path in explanation.indirect_paths)

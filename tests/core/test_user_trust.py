"""Tests for repro.core.user_trust: Eq. 6, friends and blacklists."""

import pytest

from repro.core import UserTrustStore, build_user_trust_matrix
from repro.core.user_trust import FRIEND_TRUST


class TestRatings:
    def test_rate_and_read(self):
        store = UserTrustStore()
        store.rate("a", "b", 0.7)
        assert store.trust("a", "b") == 0.7

    def test_unknown_relationship_is_none(self):
        assert UserTrustStore().trust("a", "b") is None

    def test_self_rating_rejected(self):
        with pytest.raises(ValueError):
            UserTrustStore().rate("a", "a", 0.5)

    def test_out_of_range_rating_rejected(self):
        with pytest.raises(ValueError):
            UserTrustStore().rate("a", "b", 1.5)

    def test_rating_overwrites(self):
        store = UserTrustStore()
        store.rate("a", "b", 0.2)
        store.rate("a", "b", 0.9)
        assert store.trust("a", "b") == 0.9

    def test_rank_count(self):
        store = UserTrustStore()
        store.rate("a", "b", 0.5)
        store.add_friend("a", "c")
        store.add_to_blacklist("a", "d")
        assert store.rank_count("a") == 3


class TestFriendsAndBlacklists:
    def test_friend_gets_large_trust(self):
        # "a user's friends ... should be assigned with a large UT".
        store = UserTrustStore()
        store.add_friend("a", "b")
        assert store.trust("a", "b") == FRIEND_TRUST

    def test_blacklisted_gets_zero(self):
        # "the users in the blacklist ... should be assigned with zero".
        store = UserTrustStore()
        store.rate("a", "b", 0.9)
        store.add_to_blacklist("a", "b")
        assert store.trust("a", "b") == 0.0

    def test_blacklist_dominates_friendship_history(self):
        store = UserTrustStore()
        store.add_friend("a", "b")
        store.add_to_blacklist("a", "b")
        assert store.trust("a", "b") == 0.0
        assert not store.is_friend("a", "b")

    def test_friendship_revokes_blacklist(self):
        store = UserTrustStore()
        store.add_to_blacklist("a", "b")
        store.add_friend("a", "b")
        assert store.trust("a", "b") == FRIEND_TRUST
        assert not store.is_blacklisted("a", "b")

    def test_remove_friend_falls_back_to_rating(self):
        store = UserTrustStore()
        store.rate("a", "b", 0.4)
        store.add_friend("a", "b")
        store.remove_friend("a", "b")
        assert store.trust("a", "b") == 0.4

    def test_remove_from_blacklist(self):
        store = UserTrustStore()
        store.add_to_blacklist("a", "b")
        store.remove_from_blacklist("a", "b")
        assert store.trust("a", "b") is None

    def test_self_friend_rejected(self):
        with pytest.raises(ValueError):
            UserTrustStore().add_friend("a", "a")

    def test_self_blacklist_rejected(self):
        with pytest.raises(ValueError):
            UserTrustStore().add_to_blacklist("a", "a")

    def test_friends_of_and_blacklist_of(self):
        store = UserTrustStore()
        store.add_friend("a", "b")
        store.add_to_blacklist("a", "c")
        assert store.friends_of("a") == {"b"}
        assert store.blacklist_of("a") == {"c"}


class TestRelationships:
    def test_relationships_of_merges_all_sources(self):
        store = UserTrustStore()
        store.rate("a", "b", 0.5)
        store.add_friend("a", "c")
        store.add_to_blacklist("a", "d")
        relationships = store.relationships_of("a")
        assert relationships == {"b": 0.5, "c": FRIEND_TRUST, "d": 0.0}

    def test_raters_includes_all_relationship_kinds(self):
        store = UserTrustStore()
        store.rate("a", "b", 0.5)
        store.add_friend("c", "d")
        store.add_to_blacklist("e", "f")
        assert store.raters() == {"a", "c", "e"}


class TestUserTrustMatrix:
    def test_eq6_normalization(self):
        store = UserTrustStore()
        store.rate("a", "b", 0.6)
        store.rate("a", "c", 0.2)
        matrix = build_user_trust_matrix(store)
        assert matrix.get("a", "b") == pytest.approx(0.75)
        assert matrix.get("a", "c") == pytest.approx(0.25)

    def test_blacklisted_users_vanish(self):
        store = UserTrustStore()
        store.rate("a", "b", 0.6)
        store.add_to_blacklist("a", "c")
        matrix = build_user_trust_matrix(store)
        assert matrix.get("a", "b") == pytest.approx(1.0)
        assert not matrix.has_edge("a", "c")

    def test_friends_and_ratings_mix(self):
        store = UserTrustStore()
        store.add_friend("a", "b")       # 1.0
        store.rate("a", "c", 0.5)
        matrix = build_user_trust_matrix(store)
        assert matrix.get("a", "b") == pytest.approx(1.0 / 1.5)
        assert matrix.get("a", "c") == pytest.approx(0.5 / 1.5)

    def test_all_blacklist_row_is_empty(self):
        store = UserTrustStore()
        store.add_to_blacklist("a", "b")
        matrix = build_user_trust_matrix(store)
        assert matrix.row("a") == {}

    def test_empty_store_empty_matrix(self):
        assert build_user_trust_matrix(UserTrustStore()).entry_count() == 0

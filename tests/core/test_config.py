"""Tests for repro.core.config: paper-invariant validation."""

import dataclasses

import pytest

from repro.core import ConfigError, ReputationConfig
from repro.core.config import DEFAULT_CONFIG


class TestDefaults:
    def test_default_config_is_valid(self):
        config = ReputationConfig()
        assert config.eta + config.rho == pytest.approx(1.0)
        assert config.alpha + config.beta + config.gamma == pytest.approx(1.0)

    def test_default_constant_matches_constructor(self):
        assert DEFAULT_CONFIG == ReputationConfig()

    def test_config_is_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            DEFAULT_CONFIG.eta = 0.5  # type: ignore[misc]

    def test_default_multitrust_steps_is_one(self):
        # Section 3.2: "We can choose n as 1 in Maze".
        assert DEFAULT_CONFIG.multitrust_steps == 1

    def test_default_distance_is_l1(self):
        # Eq. 2 uses the L1 distance; alternatives are footnote material.
        assert DEFAULT_CONFIG.distance_metric == "l1"


class TestEq1Weights:
    def test_eta_rho_must_sum_to_one(self):
        with pytest.raises(ConfigError, match="eta \\+ rho"):
            ReputationConfig(eta=0.5, rho=0.6)

    def test_eta_out_of_range_rejected(self):
        with pytest.raises(ConfigError):
            ReputationConfig(eta=1.2, rho=-0.2)

    def test_pure_implicit_allowed(self):
        config = ReputationConfig(eta=1.0, rho=0.0)
        assert config.eta == 1.0

    def test_pure_explicit_allowed(self):
        config = ReputationConfig(eta=0.0, rho=1.0)
        assert config.rho == 1.0


class TestEq7Weights:
    def test_dimension_weights_must_sum_to_one(self):
        with pytest.raises(ConfigError, match="alpha \\+ beta \\+ gamma"):
            ReputationConfig(alpha=0.5, beta=0.5, gamma=0.5)

    def test_with_dimension_weights_constructor(self):
        config = ReputationConfig.with_dimension_weights(0.2, 0.3, 0.5)
        assert (config.alpha, config.beta, config.gamma) == (0.2, 0.3, 0.5)

    def test_file_trust_only(self):
        config = ReputationConfig.file_trust_only()
        assert config.alpha == 1.0
        assert config.beta == config.gamma == 0.0

    def test_volume_trust_only(self):
        config = ReputationConfig.volume_trust_only()
        assert config.beta == 1.0

    def test_user_trust_only(self):
        config = ReputationConfig.user_trust_only()
        assert config.gamma == 1.0

    def test_negative_weight_rejected(self):
        with pytest.raises(ConfigError):
            ReputationConfig(alpha=-0.1, beta=0.6, gamma=0.5)


class TestOtherKnobs:
    def test_multitrust_steps_below_one_rejected(self):
        with pytest.raises(ConfigError, match="multitrust_steps"):
            ReputationConfig(multitrust_steps=0)

    def test_unknown_distance_metric_rejected(self):
        with pytest.raises(ConfigError, match="distance_metric"):
            ReputationConfig(distance_metric="cosine")

    def test_known_distance_metrics_accepted(self):
        for name in ("l1", "euclidean", "kl"):
            assert ReputationConfig(distance_metric=name).distance_metric == name

    def test_threshold_out_of_range_rejected(self):
        with pytest.raises(ConfigError):
            ReputationConfig(fake_file_threshold=1.5)

    def test_nonpositive_saturation_rejected(self):
        with pytest.raises(ConfigError, match="retention_saturation"):
            ReputationConfig(retention_saturation_seconds=0.0)

    def test_nonpositive_retention_interval_rejected(self):
        with pytest.raises(ConfigError, match="evaluation_retention_interval"):
            ReputationConfig(evaluation_retention_interval=-1.0)

    def test_min_overlap_below_one_rejected(self):
        with pytest.raises(ConfigError, match="min_overlap"):
            ReputationConfig(min_overlap=0)

    def test_quota_ordering_enforced(self):
        with pytest.raises(ConfigError, match="max_bandwidth_quota"):
            ReputationConfig(min_bandwidth_quota=100.0,
                             max_bandwidth_quota=50.0)

    def test_negative_queue_offset_rejected(self):
        with pytest.raises(ConfigError, match="max_queue_offset_seconds"):
            ReputationConfig(max_queue_offset_seconds=-1.0)

    def test_negative_credit_rejected(self):
        with pytest.raises(ConfigError, match="vote_credit"):
            ReputationConfig(vote_credit=-0.1)

    def test_default_matmul_backend_is_auto(self):
        assert ReputationConfig().matmul_backend == "auto"

    def test_known_matmul_backends_accepted(self):
        for spec in ("auto", "sparse", "dense", "csr"):
            assert ReputationConfig(matmul_backend=spec).matmul_backend \
                == spec

    def test_unknown_matmul_backend_rejected(self):
        with pytest.raises(ConfigError, match="matmul_backend"):
            ReputationConfig(matmul_backend="blas")


class TestShardingKnobs:
    def test_defaults_are_monolithic(self):
        # shards == 1 selects the monolithic TrustPipeline and
        # shard_workers == 1 keeps row patching serial and in-process.
        assert DEFAULT_CONFIG.shards == 1
        assert DEFAULT_CONFIG.shard_workers == 1

    def test_sharded_configs_accepted(self):
        config = ReputationConfig(shards=8, shard_workers=4)
        assert (config.shards, config.shard_workers) == (8, 4)

    def test_shards_below_one_rejected(self):
        with pytest.raises(ConfigError, match="shards"):
            ReputationConfig(shards=0)

    def test_shard_workers_below_one_rejected(self):
        with pytest.raises(ConfigError, match="shard_workers"):
            ReputationConfig(shard_workers=-2)


class TestReplace:
    def test_replace_returns_new_validated_config(self):
        config = DEFAULT_CONFIG.replace(multitrust_steps=3)
        assert config.multitrust_steps == 3
        assert DEFAULT_CONFIG.multitrust_steps == 1

    def test_replace_revalidates(self):
        with pytest.raises(ConfigError):
            DEFAULT_CONFIG.replace(eta=0.9)  # rho stays 0.6 -> sum != 1

"""Tests for repro.core.incentive: service differentiation and credits."""

import pytest

from repro.core import (ActionCreditTracker, IncentiveAction,
                        ReputationConfig, ServiceDifferentiator)


@pytest.fixture
def config():
    return ReputationConfig(max_queue_offset_seconds=60.0,
                            min_bandwidth_quota=10_000.0,
                            max_bandwidth_quota=100_000.0)


class TestServiceDifferentiator:
    def test_offset_grows_with_reputation(self, config):
        differentiator = ServiceDifferentiator(config, reference_reputation=1.0)
        assert differentiator.queue_offset(0.0) == 0.0
        assert differentiator.queue_offset(0.5) == pytest.approx(30.0)
        assert differentiator.queue_offset(1.0) == pytest.approx(60.0)

    def test_offset_clamped_at_reference(self, config):
        differentiator = ServiceDifferentiator(config, reference_reputation=1.0)
        assert differentiator.queue_offset(5.0) == pytest.approx(60.0)

    def test_bandwidth_interpolates_between_quotas(self, config):
        differentiator = ServiceDifferentiator(config, reference_reputation=1.0)
        assert differentiator.bandwidth_quota(0.0) == pytest.approx(10_000.0)
        assert differentiator.bandwidth_quota(1.0) == pytest.approx(100_000.0)
        assert differentiator.bandwidth_quota(0.5) == pytest.approx(55_000.0)

    def test_reference_scales_normalization(self, config):
        differentiator = ServiceDifferentiator(config,
                                               reference_reputation=0.01)
        # Reputation 0.01 is "the best anyone has" -> full service.
        assert differentiator.queue_offset(0.01) == pytest.approx(60.0)

    def test_nonpositive_reference_rejected(self, config):
        with pytest.raises(ValueError):
            ServiceDifferentiator(config, reference_reputation=0.0)

    def test_negative_reputation_treated_as_zero(self, config):
        differentiator = ServiceDifferentiator(config)
        assert differentiator.normalize(-1.0) == 0.0

    def test_service_level_bundle(self, config):
        differentiator = ServiceDifferentiator(config)
        level = differentiator.service_level("u", 1.0)
        assert level.requester == "u"
        assert level.queue_offset_seconds == pytest.approx(60.0)
        assert level.bandwidth_quota == pytest.approx(100_000.0)


class TestQueueOrdering:
    def test_high_reputation_jumps_the_queue(self, config):
        differentiator = ServiceDifferentiator(config)
        # "good" arrives 30s later but earns a 60s offset.
        ordered = differentiator.order_queue([
            ("early-stranger", 0.0, 0.0),
            ("good", 30.0, 1.0),
        ])
        assert [name for name, _ in ordered] == ["good", "early-stranger"]

    def test_offset_not_enough_to_overcome_big_gap(self, config):
        differentiator = ServiceDifferentiator(config)
        ordered = differentiator.order_queue([
            ("early-stranger", 0.0, 0.0),
            ("good", 120.0, 1.0),
        ])
        assert [name for name, _ in ordered] == ["early-stranger", "good"]

    def test_fifo_among_equals(self, config):
        differentiator = ServiceDifferentiator(config)
        ordered = differentiator.order_queue([
            ("second", 10.0, 0.5),
            ("first", 5.0, 0.5),
        ])
        assert [name for name, _ in ordered] == ["first", "second"]

    def test_deterministic_tie_break_by_name(self, config):
        differentiator = ServiceDifferentiator(config)
        ordered = differentiator.order_queue([
            ("b", 0.0, 0.0), ("a", 0.0, 0.0)])
        assert [name for name, _ in ordered] == ["a", "b"]


class TestActionCredits:
    def test_each_action_uses_configured_credit(self):
        config = ReputationConfig(upload_credit=2.0, vote_credit=0.5,
                                  rank_credit=0.25, delete_fake_credit=1.0)
        tracker = ActionCreditTracker(config=config)
        tracker.record("u", IncentiveAction.UPLOAD_REAL_FILE)
        tracker.record("u", IncentiveAction.VOTE)
        tracker.record("u", IncentiveAction.RANK_USER)
        tracker.record("u", IncentiveAction.DELETE_FAKE_FILE)
        assert tracker.credit("u") == pytest.approx(3.75)

    def test_action_counts_tracked(self):
        tracker = ActionCreditTracker()
        tracker.record("u", IncentiveAction.VOTE)
        tracker.record("u", IncentiveAction.VOTE)
        assert tracker.action_count("u", IncentiveAction.VOTE) == 2
        assert tracker.action_count("u", IncentiveAction.RANK_USER) == 0

    def test_magnitude_scales_credit(self):
        tracker = ActionCreditTracker()
        tracker.record("u", IncentiveAction.VOTE, magnitude=4.0)
        assert tracker.credit("u") == pytest.approx(1.0)  # 4 * 0.25

    def test_negative_magnitude_rejected(self):
        with pytest.raises(ValueError):
            ActionCreditTracker().record("u", IncentiveAction.VOTE,
                                         magnitude=-1.0)

    def test_unknown_user_has_zero_credit(self):
        assert ActionCreditTracker().credit("nobody") == 0.0

    def test_top_users_ordering(self):
        tracker = ActionCreditTracker()
        tracker.record("low", IncentiveAction.RANK_USER)
        tracker.record("high", IncentiveAction.UPLOAD_REAL_FILE)
        assert [user for user, _ in tracker.top_users(2)] == ["high", "low"]

    def test_every_prosocial_action_increases_credit(self):
        """Section 3.4: uploads, votes, ranks and fake deletions all pay."""
        tracker = ActionCreditTracker()
        balance = 0.0
        for action in IncentiveAction:
            new_balance = tracker.record("u", action)
            assert new_balance > balance
            balance = new_balance

"""Tests for repro.core.integration: Eq. 7."""

import pytest

from repro.core import (DownloadLedger, EvaluationStore, ReputationConfig,
                        TrustDimension, TrustMatrix, UserTrustStore,
                        build_one_step_matrix, integrate_dimensions)

PURE_EXPLICIT = ReputationConfig(eta=0.0, rho=1.0)


def _dimension(name, weight, entries):
    matrix = TrustMatrix()
    for i, j, value in entries:
        matrix.set(i, j, value)
    return TrustDimension(name, weight, matrix)


class TestIntegrateDimensions:
    def test_eq7_weighted_sum(self):
        fm = _dimension("file", 0.5, [("a", "b", 1.0)])
        dm = _dimension("volume", 0.3, [("a", "b", 1.0)])
        um = _dimension("user", 0.2, [("a", "c", 1.0)])
        tm = integrate_dimensions([fm, dm, um])
        assert tm.get("a", "b") == pytest.approx(0.8)
        assert tm.get("a", "c") == pytest.approx(0.2)

    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            integrate_dimensions([_dimension("file", 0.5, []),
                                  _dimension("volume", 0.2, [])])

    def test_unnormalized_allowed_when_requested(self):
        tm = integrate_dimensions([_dimension("file", 0.5,
                                              [("a", "b", 1.0)])],
                                  require_normalized=False)
        assert tm.get("a", "b") == pytest.approx(0.5)

    def test_extension_to_more_dimensions(self):
        # "When there are more methods ... this equation can be extended
        # easily": four dimensions work just like three.
        dimensions = [
            _dimension("file", 0.25, [("a", "b", 1.0)]),
            _dimension("volume", 0.25, [("a", "b", 1.0)]),
            _dimension("user", 0.25, [("a", "b", 1.0)]),
            _dimension("play-time", 0.25, [("a", "b", 1.0)]),
        ]
        tm = integrate_dimensions(dimensions)
        assert tm.get("a", "b") == pytest.approx(1.0)

    def test_empty_dimension_list_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            integrate_dimensions([])

    def test_negative_dimension_weight_rejected(self):
        with pytest.raises(ValueError):
            _dimension("file", -0.5, [])


class TestBuildOneStepMatrix:
    @pytest.fixture
    def stores(self):
        evaluations = EvaluationStore(config=PURE_EXPLICIT)
        evaluations.record_vote("a", "f1", 0.9)
        evaluations.record_vote("b", "f1", 0.9)
        ledger = DownloadLedger()
        ledger.record_download("a", "c", "f1", 100.0)
        evaluations.record_vote("a", "f1", 0.9)  # validates the volume
        user_trust = UserTrustStore()
        user_trust.add_friend("a", "d")
        return evaluations, ledger, user_trust

    def test_combines_all_three_dimensions(self, stores):
        evaluations, ledger, user_trust = stores
        tm = build_one_step_matrix(evaluations, ledger, user_trust,
                                   PURE_EXPLICIT)
        # FM edge a->b, DM edge a->c, UM edge a->d all present.
        assert tm.get("a", "b") == pytest.approx(PURE_EXPLICIT.alpha)
        assert tm.get("a", "c") == pytest.approx(PURE_EXPLICIT.beta)
        assert tm.get("a", "d") == pytest.approx(PURE_EXPLICIT.gamma)

    def test_row_sums_bounded_by_one(self, stores):
        evaluations, ledger, user_trust = stores
        tm = build_one_step_matrix(evaluations, ledger, user_trust,
                                   PURE_EXPLICIT)
        for _, row in tm.rows():
            assert sum(row.values()) <= 1.0 + 1e-9

    def test_missing_stores_skip_dimensions(self, stores):
        evaluations, _, _ = stores
        tm = build_one_step_matrix(evaluations, None, None, PURE_EXPLICIT)
        assert tm.get("a", "b") == pytest.approx(PURE_EXPLICIT.alpha)
        assert not tm.has_edge("a", "c")
        assert not tm.has_edge("a", "d")

    def test_zero_weight_skips_dimension(self, stores):
        evaluations, ledger, user_trust = stores
        config = ReputationConfig(eta=0.0, rho=1.0,
                                  alpha=0.0, beta=0.0, gamma=1.0)
        tm = build_one_step_matrix(evaluations, ledger, user_trust, config)
        assert not tm.has_edge("a", "b")
        assert tm.get("a", "d") == pytest.approx(1.0)

    def test_everything_empty_gives_empty_matrix(self):
        tm = build_one_step_matrix(EvaluationStore(), DownloadLedger(),
                                   UserTrustStore())
        assert tm.entry_count() == 0

"""Tests for repro.core.persistence: save/restore round trips."""

import json

import pytest

from repro.core import (MultiDimensionalReputationSystem, ReputationConfig,
                        load_system, save_system, system_from_dict,
                        system_to_dict)
from repro.core.persistence import (FORMAT_VERSION, snapshot_checksum,
                                    wal_last_seq)

DAY = 24 * 3600.0


@pytest.fixture
def populated_system():
    config = ReputationConfig(eta=0.3, rho=0.7, alpha=0.4, beta=0.4,
                              gamma=0.2, multitrust_steps=2)
    system = MultiDimensionalReputationSystem(config)
    system.record_retention("alice", "f1", 20 * DAY, timestamp=10.0)
    system.record_vote("alice", "f1", 0.9, timestamp=11.0)
    system.record_play("alice", "f2", 0.8, timestamp=12.0)
    system.record_vote("bob", "f1", 0.85, timestamp=13.0)
    system.record_download("alice", "bob", "f1", 5e8, timestamp=14.0)
    system.record_rank("alice", "bob", 0.7)
    system.add_friend("bob", "alice")
    system.add_to_blacklist("alice", "mallory")
    system.record_fake_deletion("bob", "junk", timestamp=15.0)
    system.record_real_upload("bob")
    return system


class TestRoundTrip:
    def test_dict_round_trip_preserves_reputations(self, populated_system):
        restored = system_from_dict(system_to_dict(populated_system))
        users = ("alice", "bob", "mallory")
        for observer in users:
            for target in users:
                assert restored.user_reputation(observer, target) == \
                    pytest.approx(
                        populated_system.user_reputation(observer, target))

    def test_config_restored(self, populated_system):
        restored = system_from_dict(system_to_dict(populated_system))
        assert restored.config == populated_system.config

    def test_matmul_backend_round_trips(self):
        system = MultiDimensionalReputationSystem(
            ReputationConfig(matmul_backend="dense"))
        system.record_vote("alice", "f1", 0.9)
        restored = system_from_dict(system_to_dict(system))
        assert restored.config.matmul_backend == "dense"

    def test_evaluation_channels_restored(self, populated_system):
        restored = system_from_dict(system_to_dict(populated_system))
        original = populated_system.evaluations.get("alice", "f2")
        copy = restored.evaluations.get("alice", "f2")
        assert copy.play_fraction == original.play_fraction
        original = populated_system.evaluations.get("alice", "f1")
        copy = restored.evaluations.get("alice", "f1")
        assert copy.explicit == original.explicit
        assert copy.implicit == original.implicit
        assert copy.timestamp == original.timestamp

    def test_user_trust_restored(self, populated_system):
        restored = system_from_dict(system_to_dict(populated_system))
        assert restored.user_trust.is_friend("bob", "alice")
        assert restored.user_trust.is_blacklisted("alice", "mallory")
        assert restored.user_trust.trust("alice", "bob") == 0.7

    def test_credits_restored(self, populated_system):
        restored = system_from_dict(system_to_dict(populated_system))
        for user in ("alice", "bob"):
            assert restored.credits.credit(user) == pytest.approx(
                populated_system.credits.credit(user))

    def test_judgements_survive_round_trip(self, populated_system):
        restored = system_from_dict(system_to_dict(populated_system))
        original = populated_system.judge_file("alice", "f1")
        copy = restored.judge_file("alice", "f1")
        assert copy.accept == original.accept
        assert copy.reputation == pytest.approx(original.reputation)


class TestFileRoundTrip:
    def test_save_and_load(self, populated_system, tmp_path):
        path = tmp_path / "state.json"
        save_system(populated_system, path)
        restored = load_system(path)
        assert restored.user_reputation("alice", "bob") == pytest.approx(
            populated_system.user_reputation("alice", "bob"))

    def test_file_is_valid_json(self, populated_system, tmp_path):
        path = tmp_path / "state.json"
        save_system(populated_system, path)
        data = json.loads(path.read_text())
        assert data["format_version"] == FORMAT_VERSION

    def test_save_is_deterministic(self, populated_system, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        save_system(populated_system, a)
        save_system(populated_system, b)
        assert a.read_text() == b.read_text()


class TestVersioning:
    def test_unknown_version_rejected(self, populated_system):
        data = system_to_dict(populated_system)
        data["format_version"] = 99
        with pytest.raises(ValueError, match="format_version"):
            system_from_dict(data)

    def test_missing_version_rejected(self, populated_system):
        data = system_to_dict(populated_system)
        del data["format_version"]
        with pytest.raises(ValueError):
            system_from_dict(data)


def _as_v1(data):
    """Rewrite a current-format dump as a faithful version-1 document."""
    v1 = {key: value for key, value in data.items()
          if key not in ("wal", "checksum")}
    v1["format_version"] = 1
    return v1


class TestV1Migration:
    """Version-1 documents (pre-WAL, pre-checksum) must keep loading."""

    def test_v1_document_loads(self, populated_system):
        v1 = _as_v1(system_to_dict(populated_system))
        restored = system_from_dict(v1)
        users = ("alice", "bob", "mallory")
        for observer in users:
            for target in users:
                assert restored.user_reputation(observer, target) == \
                    pytest.approx(
                        populated_system.user_reputation(observer, target))

    def test_v1_has_no_wal_coverage(self, populated_system):
        v1 = _as_v1(system_to_dict(populated_system))
        assert wal_last_seq(v1) == 0

    def test_v1_json_file_loads(self, populated_system, tmp_path):
        path = tmp_path / "v1.json"
        path.write_text(json.dumps(_as_v1(system_to_dict(populated_system))))
        restored = load_system(path)
        assert restored.user_trust.is_friend("bob", "alice")


class TestV2Metadata:
    def test_wal_seq_round_trips(self, populated_system):
        data = system_to_dict(populated_system, last_seq=42)
        assert wal_last_seq(data) == 42
        system_from_dict(data)  # still restores with the wal section

    def test_checksum_is_stamped_and_verifies(self, populated_system):
        data = system_to_dict(populated_system)
        assert data["checksum"] == snapshot_checksum(data)
        system_from_dict(data)

    def test_checksum_mismatch_rejected(self, populated_system):
        data = system_to_dict(populated_system)
        data["auto_refresh"] = not data["auto_refresh"]
        with pytest.raises(ValueError, match="checksum mismatch"):
            system_from_dict(data)

    def test_malformed_wal_section_rejected(self, populated_system):
        data = system_to_dict(populated_system, last_seq=7)
        data["wal"] = {"last_seq": "seven"}
        data["checksum"] = snapshot_checksum(data)
        with pytest.raises(ValueError, match="'wal'"):
            system_from_dict(data)


class TestV3Sharding:
    """Sharded systems stamp (and validate) shard-routing metadata."""

    def _sharded_system(self):
        config = ReputationConfig(shards=4)
        system = MultiDimensionalReputationSystem(config)
        system.record_vote("alice", "f1", 0.9, timestamp=1.0)
        system.record_vote("bob", "f1", 0.8, timestamp=2.0)
        system.record_download("alice", "bob", "f1", 5e8, timestamp=3.0)
        system.record_rank("bob", "alice", 0.6)
        return system

    def test_unsharded_document_has_no_sharding_section(
            self, populated_system):
        assert "sharding" not in system_to_dict(populated_system)

    def test_sharded_document_stamps_metadata(self):
        data = system_to_dict(self._sharded_system())
        sharding = data["sharding"]
        assert sharding["shards"] == 4
        assert sharding["hash"] == "blake2b64"
        assert isinstance(sharding["assignment_digest"], str)

    def test_sharded_round_trip(self):
        system = self._sharded_system()
        restored = system_from_dict(system_to_dict(system))
        assert restored.config.shards == 4
        assert restored.pipeline.checksums() == system.pipeline.checksums()

    def test_wrong_hash_algorithm_rejected(self):
        data = system_to_dict(self._sharded_system())
        data["sharding"]["hash"] = "crc32"
        data["checksum"] = snapshot_checksum(data)
        with pytest.raises(ValueError, match="crc32"):
            system_from_dict(data)

    def test_shard_count_disagreement_rejected(self):
        data = system_to_dict(self._sharded_system())
        data["sharding"]["shards"] = 8
        data["checksum"] = snapshot_checksum(data)
        with pytest.raises(ValueError, match="8 shard"):
            system_from_dict(data)

    def test_assignment_digest_mismatch_rejected(self):
        data = system_to_dict(self._sharded_system())
        data["sharding"]["assignment_digest"] = "0" * 64
        data["checksum"] = snapshot_checksum(data)
        with pytest.raises(ValueError, match="assignment digest"):
            system_from_dict(data)

    def test_malformed_sharding_section_rejected(self):
        data = system_to_dict(self._sharded_system())
        data["sharding"] = {"shards": "four"}
        data["checksum"] = snapshot_checksum(data)
        with pytest.raises(ValueError, match="'sharding'"):
            system_from_dict(data)

    def test_v2_document_without_shard_knobs_loads(self, populated_system):
        # A pre-v3 document has neither the config knobs nor the section;
        # it must default to the unsharded pipeline.
        data = system_to_dict(populated_system)
        data["format_version"] = 2
        del data["config"]["shards"]
        del data["config"]["shard_workers"]
        data["checksum"] = snapshot_checksum(data)
        restored = system_from_dict(data)
        assert restored.config.shards == 1
        assert restored.config.shard_workers == 1


class TestPreciseErrors:
    """Rejections must name the offending field or section."""

    def _unstamped(self, populated_system, mutate):
        data = system_to_dict(populated_system)
        mutate(data)
        data["checksum"] = snapshot_checksum(data)
        return data

    def test_missing_section_is_named(self, populated_system):
        data = self._unstamped(populated_system,
                               lambda d: d.pop("downloads"))
        with pytest.raises(ValueError, match="'downloads'"):
            system_from_dict(data)

    def test_unknown_section_is_named(self, populated_system):
        data = self._unstamped(
            populated_system,
            lambda d: d.__setitem__("telemetry", {}))
        with pytest.raises(ValueError, match="'telemetry'"):
            system_from_dict(data)

    def test_unknown_config_field_is_named(self, populated_system):
        data = self._unstamped(
            populated_system,
            lambda d: d["config"].__setitem__("warp_factor", 9))
        with pytest.raises(ValueError, match="'warp_factor'"):
            system_from_dict(data)

    def test_missing_config_field_is_named(self, populated_system):
        data = self._unstamped(populated_system,
                               lambda d: d["config"].pop("eta"))
        with pytest.raises(ValueError, match="'eta'"):
            system_from_dict(data)

    def test_multiple_missing_fields_all_named(self, populated_system):
        def mutate(d):
            d["config"].pop("eta")
            d["config"].pop("rho")
        data = self._unstamped(populated_system, mutate)
        with pytest.raises(ValueError, match="'eta'.*'rho'"):
            system_from_dict(data)

"""Tests for repro.core.file_trust: Eqs. 2-3."""

import pytest

from repro.core import (EvaluationStore, ReputationConfig,
                        build_file_trust_matrix, file_trust)


@pytest.fixture
def store():
    store = EvaluationStore(config=ReputationConfig(eta=0.0, rho=1.0))
    # With pure-explicit weights the Eq. 1 values equal the votes, which
    # makes the Eq. 2 arithmetic in these tests exact.
    store.record_vote("a", "f1", 0.9)
    store.record_vote("a", "f2", 0.1)
    store.record_vote("b", "f1", 0.9)
    store.record_vote("b", "f2", 0.1)
    store.record_vote("c", "f1", 0.1)
    store.record_vote("c", "f2", 0.9)
    store.record_vote("d", "f9", 0.5)
    return store


@pytest.fixture
def config():
    return ReputationConfig(eta=0.0, rho=1.0)


class TestFileTrust:
    def test_identical_opinions_give_full_trust(self, store, config):
        assert file_trust(store, "a", "b", config) == pytest.approx(1.0)

    def test_opposed_opinions_give_low_trust(self, store, config):
        # |0.9-0.1| = 0.8 on both shared files -> FT = 0.2.
        assert file_trust(store, "a", "c", config) == pytest.approx(0.2)

    def test_no_shared_files_means_no_relationship(self, store, config):
        assert file_trust(store, "a", "d", config) is None

    def test_none_is_distinct_from_zero(self, config):
        # Perfectly opposed single votes give FT == 0.0, not None.
        store = EvaluationStore(config=config)
        store.record_vote("a", "f", 1.0)
        store.record_vote("b", "f", 0.0)
        assert file_trust(store, "a", "b", config) == pytest.approx(0.0)

    def test_symmetry(self, store, config):
        assert file_trust(store, "a", "c", config) == pytest.approx(
            file_trust(store, "c", "a", config))

    def test_min_overlap_enforced(self, store):
        config = ReputationConfig(eta=0.0, rho=1.0, min_overlap=3)
        assert file_trust(store, "a", "b", config) is None

    def test_alternative_metric_used(self, store):
        config = ReputationConfig(eta=0.0, rho=1.0,
                                  distance_metric="euclidean")
        value = file_trust(store, "a", "c", config)
        assert value == pytest.approx(1.0 - 0.8)  # RMS of (0.8, 0.8)


class TestFileTrustMatrix:
    def test_rows_are_normalized(self, store, config):
        matrix = build_file_trust_matrix(store, config)
        for _, row in matrix.rows():
            assert sum(row.values()) == pytest.approx(1.0)

    def test_eq3_normalization_values(self, store, config):
        matrix = build_file_trust_matrix(store, config)
        # From a's perspective: FT(a,b)=1.0, FT(a,c)=0.2.
        assert matrix.get("a", "b") == pytest.approx(1.0 / 1.2)
        assert matrix.get("a", "c") == pytest.approx(0.2 / 1.2)

    def test_isolated_user_has_no_row(self, store, config):
        matrix = build_file_trust_matrix(store, config)
        assert matrix.row("d") == {}

    def test_restricting_users(self, store, config):
        matrix = build_file_trust_matrix(store, config, users=["a", "b"])
        assert matrix.get("a", "b") == pytest.approx(1.0)
        assert not matrix.has_edge("a", "c")

    def test_empty_store_gives_empty_matrix(self, config):
        matrix = build_file_trust_matrix(EvaluationStore(config=config), config)
        assert matrix.entry_count() == 0

    def test_zero_trust_pairs_excluded(self, config):
        store = EvaluationStore(config=config)
        store.record_vote("a", "f", 1.0)
        store.record_vote("b", "f", 0.0)
        matrix = build_file_trust_matrix(store, config)
        # FT == 0 produces no edge (and would vanish in normalisation).
        assert not matrix.has_edge("a", "b")

    def test_matrix_scales_with_shared_evaluations(self, config):
        # More co-evaluated files never *create* disagreement: two users
        # agreeing on everything keep FT = 1 regardless of m.
        store = EvaluationStore(config=config)
        for index in range(10):
            store.record_vote("a", f"f{index}", 0.8)
            store.record_vote("b", f"f{index}", 0.8)
        assert file_trust(store, "a", "b", config) == pytest.approx(1.0)

"""Unit tests for the deterministic peer-space partitioner.

The shard map is the root of the sharded pipeline's reproducibility story:
``shard_of`` must be a pure function of ``(peer_id, shard_count)`` — never
of process state — and the partition/digest helpers must emit canonical
(sorted) structures so every consumer inherits a deterministic order.
"""

import pytest

from repro.core.shard import (ShardMap, shard_for_record, shard_owner)


class TestShardMap:
    def test_rejects_nonpositive_counts(self):
        for count in (0, -1, -8):
            with pytest.raises(ValueError):
                ShardMap(count)

    def test_single_shard_owns_everything(self):
        shard_map = ShardMap(1)
        for peer in ("u0", "alice", "", "p" * 100, "ünïcode"):
            assert shard_map.shard_of(peer) == 0

    def test_assignment_in_range_and_stable(self):
        shard_map = ShardMap(7)
        peers = [f"peer{i}" for i in range(200)]
        first = {p: shard_map.shard_of(p) for p in peers}
        assert all(0 <= s < 7 for s in first.values())
        # Memoised lookups and a fresh instance both agree exactly.
        fresh = ShardMap(7)
        for peer in peers:
            assert shard_map.shard_of(peer) == first[peer]
            assert fresh.shard_of(peer) == first[peer]

    def test_assignment_independent_of_lookup_order(self):
        forward = ShardMap(5)
        backward = ShardMap(5)
        peers = [f"u{i:03d}" for i in range(50)]
        for peer in peers:
            forward.shard_of(peer)
        for peer in reversed(peers):
            backward.shard_of(peer)
        assert {p: forward.shard_of(p) for p in peers} == \
            {p: backward.shard_of(p) for p in peers}

    def test_known_assignment_pinned(self):
        # blake2b64 % count is part of the on-disk compatibility surface
        # (snapshots stamp the algorithm name); pin a few values so an
        # accidental hash change fails loudly instead of silently
        # re-routing every peer.
        shard_map = ShardMap(4)
        pinned = {p: shard_map.shard_of(p) for p in ("u0", "u1", "u2", "u3")}
        assert ShardMap(4).shard_of("u0") == pinned["u0"]
        assert set(pinned.values()) <= {0, 1, 2, 3}

    def test_partition_buckets_sorted_and_complete(self):
        shard_map = ShardMap(3)
        peers = [f"n{i}" for i in range(40)]
        buckets = shard_map.partition(reversed(peers))
        assert list(buckets) == sorted(buckets)
        for shard, members in buckets.items():
            assert members == sorted(members)
            assert all(shard_map.shard_of(p) == shard for p in members)
        flattened = [p for members in buckets.values() for p in members]
        assert sorted(flattened) == sorted(peers)

    def test_partition_deduplicates(self):
        shard_map = ShardMap(2)
        buckets = shard_map.partition(["a", "b", "a", "b", "a"])
        assert sum(len(m) for m in buckets.values()) == 2

    def test_partition_empty(self):
        assert ShardMap(4).partition([]) == {}

    def test_digest_stable_and_order_independent(self):
        peers = [f"u{i}" for i in range(30)]
        digest = ShardMap(5).assignment_digest(peers)
        assert ShardMap(5).assignment_digest(reversed(peers)) == digest
        assert ShardMap(5).assignment_digest(peers * 2) == digest

    def test_digest_sensitive_to_count_and_membership(self):
        peers = [f"u{i}" for i in range(30)]
        base = ShardMap(5).assignment_digest(peers)
        assert ShardMap(6).assignment_digest(peers) != base
        assert ShardMap(5).assignment_digest(peers + ["extra"]) != base

    def test_repr_names_count(self):
        assert "3" in repr(ShardMap(3))


class TestRecordRouting:
    def test_owner_keys_for_each_store(self):
        assert shard_owner("eval.vote", {"user": "u1", "file": "f1"}) == "u1"
        assert shard_owner("eval.retention", {"user": "u2"}) == "u2"
        assert shard_owner("ledger.download",
                           {"downloader": "d1", "uploader": "s1"}) == "d1"
        assert shard_owner("user.rate", {"rater": "r1", "target": "t1"}) \
            == "r1"
        assert shard_owner("user.friend", {"user": "u9"}) == "u9"
        assert shard_owner("credit.record", {"user": "u4"}) == "u4"

    def test_global_records_have_no_owner(self):
        assert shard_owner("ledger.prune", {"before": 10.0}) is None
        assert shard_owner("unknown.kind", {"user": "u1"}) is None

    def test_missing_or_nonstring_payload_owner(self):
        assert shard_owner("eval.vote", {}) is None
        assert shard_owner("eval.vote", {"user": 42}) is None

    def test_shard_for_record_routes_through_map(self):
        shard_map = ShardMap(4)
        shard = shard_for_record("eval.vote", {"user": "u7"}, shard_map)
        assert shard == shard_map.shard_of("u7")
        assert shard_for_record("ledger.prune", {}, shard_map) is None

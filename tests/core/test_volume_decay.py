"""Tests for the recency-decayed Eq. 4 variant."""

import pytest

from repro.core import (DownloadLedger, EvaluationStore, ReputationConfig,
                        build_volume_trust_matrix, valid_download_volume)

PURE_EXPLICIT = ReputationConfig(eta=0.0, rho=1.0)
DAY = 24 * 3600.0


@pytest.fixture
def history():
    ledger = DownloadLedger()
    store = EvaluationStore(config=PURE_EXPLICIT)
    # Old download from b, fresh download from c, equal size/quality.
    ledger.record_download("a", "b", "old-file", 1000.0, timestamp=0.0)
    ledger.record_download("a", "c", "new-file", 1000.0, timestamp=30 * DAY)
    store.record_vote("a", "old-file", 1.0)
    store.record_vote("a", "new-file", 1.0)
    return ledger, store


class TestDecayedVolume:
    def test_no_decay_without_half_life(self, history):
        ledger, store = history
        assert valid_download_volume(ledger, store, "a", "b") == \
            pytest.approx(1000.0)

    def test_one_half_life_halves_contribution(self, history):
        ledger, store = history
        volume = valid_download_volume(ledger, store, "a", "b",
                                       now=30 * DAY, half_life=30 * DAY)
        assert volume == pytest.approx(500.0)

    def test_fresh_download_undecayed(self, history):
        ledger, store = history
        volume = valid_download_volume(ledger, store, "a", "c",
                                       now=30 * DAY, half_life=30 * DAY)
        assert volume == pytest.approx(1000.0)

    def test_future_timestamps_not_amplified(self, history):
        ledger, store = history
        # now earlier than the record: age clamps at 0, weight stays 1.
        volume = valid_download_volume(ledger, store, "a", "c",
                                       now=0.0, half_life=DAY)
        assert volume == pytest.approx(1000.0)

    def test_half_life_requires_now(self, history):
        ledger, store = history
        with pytest.raises(ValueError):
            valid_download_volume(ledger, store, "a", "b", half_life=DAY)
        with pytest.raises(ValueError):
            valid_download_volume(ledger, store, "a", "b", now=1.0)

    def test_nonpositive_half_life_rejected(self, history):
        ledger, store = history
        with pytest.raises(ValueError):
            valid_download_volume(ledger, store, "a", "b", now=1.0,
                                  half_life=0.0)


class TestDecayedMatrix:
    def test_decay_shifts_normalised_trust_toward_recent(self, history):
        ledger, store = history
        undecayed = build_volume_trust_matrix(ledger, store, PURE_EXPLICIT)
        decayed = build_volume_trust_matrix(ledger, store, PURE_EXPLICIT,
                                            now=30 * DAY, half_life=10 * DAY)
        # Without decay b and c split a's trust evenly.
        assert undecayed.get("a", "b") == pytest.approx(0.5)
        # With decay the stale uploader loses normalised share.
        assert decayed.get("a", "b") < 0.2
        assert decayed.get("a", "c") > 0.8

    def test_rows_stay_stochastic_under_decay(self, history):
        ledger, store = history
        decayed = build_volume_trust_matrix(ledger, store, PURE_EXPLICIT,
                                            now=30 * DAY, half_life=10 * DAY)
        assert sum(decayed.row("a").values()) == pytest.approx(1.0)

"""Tests for repro.core.matrix_backend: the pluggable matmul seam."""

import numpy as np
import pytest

from repro.core import (DENSE_BACKEND, SPARSE_BACKEND, DenseNumpyBackend,
                        SparseDictBackend, TrustMatrix, resolve_backend,
                        select_backend)
from repro.core.matrix_backend import DENSE_MIN_NODES


def _random_stochastic(nodes: int, per_row: int, seed: int = 3) -> TrustMatrix:
    import random
    rng = random.Random(seed)
    ids = [f"n{i:03d}" for i in range(nodes)]
    matrix = TrustMatrix()
    for i in ids:
        targets = rng.sample([j for j in ids if j != i],
                             min(per_row, nodes - 1))
        raw = {j: rng.random() for j in targets}
        total = sum(raw.values())
        for j, value in raw.items():
            matrix.set(i, j, value / total)
    return matrix


class TestBackendEquivalence:
    def test_matmul_agrees_with_sparse(self):
        left = _random_stochastic(20, 8, seed=1)
        right = _random_stochastic(20, 8, seed=2)
        sparse = SPARSE_BACKEND.matmul(left, right)
        dense = DENSE_BACKEND.matmul(left, right)
        ids = sorted(set(sparse.node_ids()) | set(dense.node_ids()))
        for i in ids:
            for j in ids:
                assert dense.get(i, j) == pytest.approx(
                    sparse.get(i, j), abs=1e-12)

    def test_power_agrees_with_sparse(self):
        matrix = _random_stochastic(16, 10)
        sparse = SPARSE_BACKEND.power(matrix, 3)
        dense = DENSE_BACKEND.power(matrix, 3)
        for i in matrix.node_ids():
            for j in matrix.node_ids():
                assert dense.get(i, j) == pytest.approx(
                    sparse.get(i, j), abs=1e-12)

    def test_power_agrees_with_numpy(self):
        matrix = _random_stochastic(12, 6)
        ids = matrix.node_ids()
        expected = np.linalg.matrix_power(matrix.to_dense(ids)[0], 2)
        result = DENSE_BACKEND.power(matrix, 2)
        for a, i in enumerate(ids):
            for b, j in enumerate(ids):
                assert result.get(i, j) == pytest.approx(
                    expected[a, b], abs=1e-12)


class TestDensePower:
    def test_power_one_returns_same_object(self):
        matrix = _random_stochastic(8, 3)
        assert DENSE_BACKEND.power(matrix, 1) is matrix

    def test_power_below_one_rejected(self):
        with pytest.raises(ValueError):
            DENSE_BACKEND.power(TrustMatrix(), 0)

    def test_empty_matrix_power(self):
        assert DENSE_BACKEND.power(TrustMatrix(), 2) == TrustMatrix()

    def test_empty_matmul(self):
        assert DENSE_BACKEND.matmul(TrustMatrix(),
                                    TrustMatrix()) == TrustMatrix()


class TestSelection:
    def test_small_matrix_stays_sparse_even_when_dense(self):
        matrix = _random_stochastic(DENSE_MIN_NODES - 2,
                                    DENSE_MIN_NODES - 3)
        assert select_backend(matrix) is SPARSE_BACKEND

    def test_large_dense_matrix_selects_dense(self):
        matrix = _random_stochastic(DENSE_MIN_NODES + 8,
                                    DENSE_MIN_NODES)
        assert select_backend(matrix) is DENSE_BACKEND

    def test_large_sparse_matrix_stays_sparse(self):
        matrix = _random_stochastic(100, 3)
        assert select_backend(matrix) is SPARSE_BACKEND

    def test_resolve_forced_spellings(self):
        matrix = TrustMatrix()
        assert resolve_backend("sparse", matrix) is SPARSE_BACKEND
        assert resolve_backend("dense", matrix) is DENSE_BACKEND

    def test_resolve_auto_delegates_to_heuristic(self):
        dense_matrix = _random_stochastic(DENSE_MIN_NODES + 8,
                                          DENSE_MIN_NODES)
        assert resolve_backend("auto", dense_matrix) is DENSE_BACKEND
        assert resolve_backend("auto", TrustMatrix()) is SPARSE_BACKEND

    def test_unknown_spec_rejected(self):
        with pytest.raises(ValueError, match="unknown matmul backend"):
            resolve_backend("blas", TrustMatrix())

    def test_backend_names(self):
        assert SparseDictBackend().name == "sparse"
        assert DenseNumpyBackend().name == "dense"

"""Tests for repro.core.matrix_backend: the pluggable matmul seam."""

import numpy as np
import pytest

import repro.core.matrix_backend as mb
from repro.core import (CSR_BACKEND, DENSE_BACKEND, SPARSE_BACKEND,
                        CsrBackend, DenseNumpyBackend, SparseDictBackend,
                        TrustMatrix, resolve_backend, select_backend)
from repro.core.matrix_backend import (CSR_MIN_NODES,
                                       DENSE_DENSITY_THRESHOLD,
                                       DENSE_MIN_NODES, MatrixStats,
                                       resolve_backend_from_stats,
                                       select_backend_from_stats)


def _random_stochastic(nodes: int, per_row: int, seed: int = 3) -> TrustMatrix:
    import random
    rng = random.Random(seed)
    ids = [f"n{i:03d}" for i in range(nodes)]
    matrix = TrustMatrix()
    for i in ids:
        targets = rng.sample([j for j in ids if j != i],
                             min(per_row, nodes - 1))
        raw = {j: rng.random() for j in targets}
        total = sum(raw.values())
        for j, value in raw.items():
            matrix.set(i, j, value / total)
    return matrix


def _matrix_with_entries(nodes: int, entries: int) -> TrustMatrix:
    """Exactly ``entries`` off-diagonal entries over exactly ``nodes`` ids.

    Fills ring offsets (i, i+shift) so every id appears from the first
    shift onward, and the off-diagonal count is *precise* — the boundary
    tests need density to land exactly on the crossover quotient.
    """
    assert nodes >= 2 and entries >= nodes
    assert entries <= nodes * (nodes - 1)
    ids = [f"n{i:03d}" for i in range(nodes)]
    matrix = TrustMatrix()
    placed = 0
    for shift in range(1, nodes):
        for a in range(nodes):
            if placed == entries:
                return matrix
            matrix.set(ids[a], ids[(a + shift) % nodes], 0.5)
            placed += 1
    return matrix


class TestBackendEquivalence:
    def test_matmul_agrees_with_sparse(self):
        left = _random_stochastic(20, 8, seed=1)
        right = _random_stochastic(20, 8, seed=2)
        sparse = SPARSE_BACKEND.matmul(left, right)
        dense = DENSE_BACKEND.matmul(left, right)
        ids = sorted(set(sparse.node_ids()) | set(dense.node_ids()))
        for i in ids:
            for j in ids:
                assert dense.get(i, j) == pytest.approx(
                    sparse.get(i, j), abs=1e-12)

    def test_power_agrees_with_sparse(self):
        matrix = _random_stochastic(16, 10)
        sparse = SPARSE_BACKEND.power(matrix, 3)
        dense = DENSE_BACKEND.power(matrix, 3)
        for i in matrix.node_ids():
            for j in matrix.node_ids():
                assert dense.get(i, j) == pytest.approx(
                    sparse.get(i, j), abs=1e-12)

    def test_power_agrees_with_numpy(self):
        matrix = _random_stochastic(12, 6)
        ids = matrix.node_ids()
        expected = np.linalg.matrix_power(matrix.to_dense(ids)[0], 2)
        result = DENSE_BACKEND.power(matrix, 2)
        for a, i in enumerate(ids):
            for b, j in enumerate(ids):
                assert result.get(i, j) == pytest.approx(
                    expected[a, b], abs=1e-12)


class TestDensePower:
    def test_power_one_returns_same_object(self):
        matrix = _random_stochastic(8, 3)
        assert DENSE_BACKEND.power(matrix, 1) is matrix

    def test_power_below_one_rejected(self):
        with pytest.raises(ValueError):
            DENSE_BACKEND.power(TrustMatrix(), 0)

    def test_empty_matrix_power(self):
        assert DENSE_BACKEND.power(TrustMatrix(), 2) == TrustMatrix()

    def test_empty_matmul(self):
        assert DENSE_BACKEND.matmul(TrustMatrix(),
                                    TrustMatrix()) == TrustMatrix()


class TestSelection:
    def test_small_matrix_stays_sparse_even_when_dense(self):
        matrix = _random_stochastic(DENSE_MIN_NODES - 2,
                                    DENSE_MIN_NODES - 3)
        assert select_backend(matrix) is SPARSE_BACKEND

    def test_large_dense_matrix_selects_dense(self):
        matrix = _random_stochastic(DENSE_MIN_NODES + 8,
                                    DENSE_MIN_NODES)
        assert select_backend(matrix) is DENSE_BACKEND

    def test_large_sparse_matrix_stays_sparse(self):
        matrix = _random_stochastic(100, 3)
        assert select_backend(matrix) is SPARSE_BACKEND

    def test_resolve_forced_spellings(self):
        matrix = TrustMatrix()
        assert resolve_backend("sparse", matrix) is SPARSE_BACKEND
        assert resolve_backend("dense", matrix) is DENSE_BACKEND

    def test_resolve_auto_delegates_to_heuristic(self):
        dense_matrix = _random_stochastic(DENSE_MIN_NODES + 8,
                                          DENSE_MIN_NODES)
        assert resolve_backend("auto", dense_matrix) is DENSE_BACKEND
        assert resolve_backend("auto", TrustMatrix()) is SPARSE_BACKEND

    def test_unknown_spec_rejected(self):
        with pytest.raises(ValueError, match="unknown matmul backend"):
            resolve_backend("blas", TrustMatrix())

    def test_backend_names(self):
        assert SparseDictBackend().name == "sparse"
        assert DenseNumpyBackend().name == "dense"
        assert CsrBackend().name == "csr"


class TestCsrBackend:
    def test_matmul_agrees_with_sparse(self):
        left = _random_stochastic(24, 6, seed=5)
        right = _random_stochastic(24, 6, seed=6)
        sparse = SPARSE_BACKEND.matmul(left, right)
        csr = CSR_BACKEND.matmul(left, right)
        ids = sorted(set(sparse.node_ids()) | set(csr.node_ids()))
        for i in ids:
            for j in ids:
                assert csr.get(i, j) == pytest.approx(
                    sparse.get(i, j), abs=1e-12)

    @pytest.mark.parametrize("steps", [2, 3, 5])
    def test_power_agrees_with_sparse(self, steps):
        matrix = _random_stochastic(18, 8, seed=7)
        sparse = SPARSE_BACKEND.power(matrix, steps)
        csr = CSR_BACKEND.power(matrix, steps)
        for i in matrix.node_ids():
            for j in matrix.node_ids():
                assert csr.get(i, j) == pytest.approx(
                    sparse.get(i, j), abs=1e-12)

    def test_power_one_returns_same_object(self):
        matrix = _random_stochastic(8, 3)
        assert CSR_BACKEND.power(matrix, 1) is matrix

    def test_power_below_one_rejected(self):
        with pytest.raises(ValueError):
            CSR_BACKEND.power(TrustMatrix(), 0)

    def test_empty_matrix(self):
        assert CSR_BACKEND.power(TrustMatrix(), 2) == TrustMatrix()
        assert CSR_BACKEND.matmul(TrustMatrix(),
                                  TrustMatrix()) == TrustMatrix()

    def test_invalid_block_rows_rejected(self):
        with pytest.raises(ValueError):
            CsrBackend(block_rows=0)

    def test_blocked_numpy_fallback_agrees(self, monkeypatch):
        # Simulate a scipy-less environment: the backend must degrade to
        # the blocked-numpy product, not fail — and still agree with the
        # canonical sparse result.  block_rows=4 forces several blocks.
        monkeypatch.setattr(mb, "_scipy_sparse", lambda: None)
        backend = CsrBackend(block_rows=4)
        assert backend.flavor == "blocked-numpy"
        matrix = _random_stochastic(19, 7, seed=8)
        expected = SPARSE_BACKEND.power(matrix, 3)
        result = backend.power(matrix, 3)
        for i in matrix.node_ids():
            for j in matrix.node_ids():
                assert result.get(i, j) == pytest.approx(
                    expected.get(i, j), abs=1e-12)

    def test_flavor_reports_scipy_when_available(self):
        expected = "scipy" if mb._scipy_sparse() is not None \
            else "blocked-numpy"
        assert CSR_BACKEND.flavor == expected

    def test_resolve_forced_csr(self):
        assert resolve_backend("csr", TrustMatrix()) is CSR_BACKEND


class TestSelectionBoundaries:
    """The density × size heuristic at its exact crossover points."""

    def test_zero_node_matrix_stays_sparse(self):
        assert select_backend(TrustMatrix()) is SPARSE_BACKEND

    def test_one_node_matrix_stays_sparse(self):
        matrix = TrustMatrix()
        matrix.set("solo", "solo", 1.0)
        assert select_backend(matrix) is SPARSE_BACKEND

    def test_density_exactly_at_threshold_selects_dense(self):
        # 41 nodes: 0.3 * 41 * 40 = 492 entries exactly — the quotient
        # lands on the threshold and the comparison is >=, so dense.
        matrix = _matrix_with_entries(41, 492)
        assert matrix.density(matrix.node_ids()) == DENSE_DENSITY_THRESHOLD
        assert select_backend(matrix) is DENSE_BACKEND

    def test_density_one_entry_below_threshold(self):
        matrix = _matrix_with_entries(41, 491)
        assert matrix.density(matrix.node_ids()) < DENSE_DENSITY_THRESHOLD
        # 32 <= 41 < 256 and sparse: the middle regime stays dict-based.
        assert select_backend(matrix) is SPARSE_BACKEND

    def test_min_nodes_edge(self):
        # Same (high) density on both sides of DENSE_MIN_NODES: one node
        # fewer flips dense -> sparse.
        below = _matrix_with_entries(DENSE_MIN_NODES - 1,
                                     (DENSE_MIN_NODES - 1) * 10)
        at = _matrix_with_entries(DENSE_MIN_NODES, DENSE_MIN_NODES * 10)
        assert below.density(below.node_ids()) >= DENSE_DENSITY_THRESHOLD
        assert at.density(at.node_ids()) >= DENSE_DENSITY_THRESHOLD
        assert select_backend(below) is SPARSE_BACKEND
        assert select_backend(at) is DENSE_BACKEND

    def test_csr_min_nodes_edge(self):
        # Sparse ring on both sides of CSR_MIN_NODES: one node fewer
        # flips csr -> sparse.
        below = _matrix_with_entries(CSR_MIN_NODES - 1, CSR_MIN_NODES - 1)
        at = _matrix_with_entries(CSR_MIN_NODES, CSR_MIN_NODES)
        assert select_backend(below) is SPARSE_BACKEND
        assert select_backend(at) is CSR_BACKEND

    def test_large_dense_beats_csr_regime(self):
        # density >= threshold wins before the csr_min_nodes check even
        # for populations big enough for CSR.
        matrix = _matrix_with_entries(CSR_MIN_NODES,
                                      CSR_MIN_NODES * (CSR_MIN_NODES - 1)
                                      * 3 // 10 + CSR_MIN_NODES)
        assert matrix.density(matrix.node_ids()) >= DENSE_DENSITY_THRESHOLD
        assert select_backend(matrix) is DENSE_BACKEND


class TestStatsLockstep:
    """select_backend_from_stats == select_backend, same matrix, always."""

    def _shapes(self):
        yield TrustMatrix()
        solo = TrustMatrix()
        solo.set("solo", "solo", 1.0)
        yield solo
        yield _matrix_with_entries(DENSE_MIN_NODES - 1,
                                   (DENSE_MIN_NODES - 1) * 10)
        yield _matrix_with_entries(DENSE_MIN_NODES, DENSE_MIN_NODES * 10)
        yield _matrix_with_entries(41, 492)   # exactly at the threshold
        yield _matrix_with_entries(41, 491)   # one entry below
        yield _random_stochastic(100, 3)
        yield _matrix_with_entries(CSR_MIN_NODES - 1, CSR_MIN_NODES - 1)
        yield _matrix_with_entries(CSR_MIN_NODES, CSR_MIN_NODES)

    def test_lockstep_across_shapes(self):
        for matrix in self._shapes():
            stats = MatrixStats.of(matrix)
            assert select_backend_from_stats(stats) \
                is select_backend(matrix), matrix

    def test_stats_counters_match_scan(self):
        matrix = _random_stochastic(50, 5, seed=11)
        matrix.set("n000", "n000", 0.25)  # a diagonal entry
        stats = MatrixStats.of(matrix)
        ids = matrix.node_ids()
        assert stats.nodes == len(ids)
        assert stats.density() == matrix.density(ids)

    def test_replace_row_folds_exactly(self):
        matrix = _random_stochastic(30, 4, seed=12)
        stats = MatrixStats.of(matrix)
        # Replace a row and fold the delta; counters must match a rescan.
        old_row = dict(matrix.row_view("n001"))
        new_row = {"n002": 0.5, "n003": 0.5}
        matrix.replace_row("n001", new_row)
        stats.replace_row("n001", old_row, new_row)
        rescan = MatrixStats.of(matrix)
        assert (stats.nodes, stats.entries, stats.diagonal, stats.rows) \
            == (rescan.nodes, rescan.entries, rescan.diagonal, rescan.rows)
        # And clearing the row entirely releases every reference.
        matrix.replace_row("n001", {})
        stats.replace_row("n001", new_row, {})
        rescan = MatrixStats.of(matrix)
        assert (stats.nodes, stats.entries, stats.diagonal, stats.rows) \
            == (rescan.nodes, rescan.entries, rescan.diagonal, rescan.rows)

    def test_resolve_from_stats_spellings(self):
        stats = MatrixStats()
        assert resolve_backend_from_stats("sparse", stats) is SPARSE_BACKEND
        assert resolve_backend_from_stats("dense", stats) is DENSE_BACKEND
        assert resolve_backend_from_stats("csr", stats) is CSR_BACKEND
        assert resolve_backend_from_stats("auto", stats) is SPARSE_BACKEND
        with pytest.raises(ValueError, match="unknown matmul backend"):
            resolve_backend_from_stats("blas", stats)

"""Tests for repro.core.tuning: the weight-sweep machinery."""

import pytest

from repro.core import (EvaluationStore, ReputationConfig, TrustMatrix,
                        build_file_trust_matrix, fake_ranking_objective,
                        file_reputation, separation_objective, simplex_grid,
                        sweep_dimension_weights, sweep_eta)


class TestSimplexGrid:
    def test_points_sum_to_one(self):
        for point in simplex_grid(4):
            assert sum(point) == pytest.approx(1.0)

    def test_count_is_triangular(self):
        # (r+1)(r+2)/2 lattice points on the 2-simplex.
        assert len(simplex_grid(4)) == 15
        assert len(simplex_grid(1)) == 3

    def test_includes_corners(self):
        points = set(simplex_grid(2))
        assert (1.0, 0.0, 0.0) in points
        assert (0.0, 1.0, 0.0) in points
        assert (0.0, 0.0, 1.0) in points

    def test_invalid_resolution(self):
        with pytest.raises(ValueError):
            simplex_grid(0)


class TestSweeps:
    def test_sweep_eta_covers_grid(self):
        result = sweep_eta(lambda config: config.eta, steps=5)
        assert len(result.points) == 6
        assert result.best_config.eta == pytest.approx(1.0)

    def test_sweep_eta_keeps_constraint(self):
        result = sweep_eta(lambda config: 0.0, steps=4)
        for point in result.points:
            assert point.config.eta + point.config.rho == pytest.approx(1.0)

    def test_sweep_dimensions_finds_planted_optimum(self):
        target = (0.5, 0.25, 0.25)

        def objective(config):
            return -(abs(config.alpha - target[0])
                     + abs(config.beta - target[1])
                     + abs(config.gamma - target[2]))

        result = sweep_dimension_weights(objective, resolution=4)
        assert (result.best_config.alpha, result.best_config.beta,
                result.best_config.gamma) == pytest.approx(target)

    def test_invalid_steps(self):
        with pytest.raises(ValueError):
            sweep_eta(lambda config: 0.0, steps=0)

    def test_table_rows_shape(self):
        result = sweep_eta(lambda config: 1.0, steps=2)
        rows = result.table_rows()
        assert len(rows) == 3
        assert len(rows[0]) == 5


class TestObjectives:
    def test_separation_objective_prefers_separating_configs(self):
        def build_reputation(config):
            # alpha scales the good edge, gamma the bad edge.
            matrix = TrustMatrix()
            matrix.set("observer", "good", config.alpha)
            if config.gamma > 0:
                matrix.set("observer", "bad", config.gamma)
            return matrix

        objective = separation_objective(build_reputation, ["observer"],
                                         good=["good"], bad=["bad"])
        result = sweep_dimension_weights(objective, resolution=2)
        assert result.best_config.alpha == pytest.approx(1.0)
        assert result.best_config.gamma == pytest.approx(0.0)

    def test_separation_objective_validates_populations(self):
        with pytest.raises(ValueError):
            separation_objective(lambda config: TrustMatrix(), [], ["g"], ["b"])

    def test_fake_ranking_objective_perfect_config(self):
        truth = {"fake": True, "real": False}

        def score_files(config):
            # eta = 1 inverts the ranking; eta = 0 ranks correctly.
            if config.eta == 0.0:
                return {"fake": 0.1, "real": 0.9}
            return {"fake": 0.9, "real": 0.1}

        objective = fake_ranking_objective(score_files, truth)
        result = sweep_eta(objective, steps=2)
        assert result.best_config.eta == pytest.approx(0.0)
        assert result.best_score == pytest.approx(1.0)

    def test_fake_ranking_objective_empty_scores(self):
        objective = fake_ranking_objective(lambda config: {}, {"f": True})
        assert objective(ReputationConfig()) == 0.0


class TestEndToEndTuning:
    def test_eta_sweep_on_real_stores(self):
        """Tune eta on a tiny world where votes are honest but retention is
        misleading (everyone hoards fakes): explicit-heavy blends win."""
        def score_files(config):
            store = EvaluationStore(config=config)
            # Both users hoard the fake (long retention) but vote it down.
            for user in ("a", "b"):
                store.record_retention(user, "fake",
                                       config.retention_saturation_seconds)
                store.record_vote(user, "fake", 0.05)
                store.record_retention(user, "real",
                                       config.retention_saturation_seconds)
                store.record_vote(user, "real", 0.95)
            fm = build_file_trust_matrix(store, config)
            scores = {}
            for file_id in ("fake", "real"):
                score = file_reputation(fm, "a",
                                        store.file_evaluations(file_id))
                if score is not None:
                    scores[file_id] = score
            return scores

        objective = fake_ranking_objective(score_files,
                                           {"fake": True, "real": False})
        result = sweep_eta(objective, steps=4)
        # Any blend with some explicit weight ranks correctly; pure implicit
        # (eta=1) cannot separate them at all.
        assert result.best_score == pytest.approx(1.0)
        pure_implicit = [point for point in result.points
                         if point.config.eta == 1.0][0]
        assert pure_implicit.score < 1.0

"""Tests for repro.core.pipeline: the incremental TrustPipeline."""

import pytest

from repro.core import (EvaluationStore, MultiDimensionalReputationSystem,
                        ReputationConfig, TrustPipeline, UserTrustStore)
from repro.core.integration import build_one_step_matrix
from repro.core.volume_trust import DownloadLedger
from repro.obs import Recorder


def _pipeline(config=None):
    evaluations = EvaluationStore(config=config or ReputationConfig())
    ledger = DownloadLedger()
    user_trust = UserTrustStore()
    pipeline = TrustPipeline(evaluations, ledger, user_trust,
                             config or ReputationConfig())
    return pipeline, evaluations, ledger, user_trust


def _populate(evaluations, ledger, user_trust):
    for user, file_id, value in [("a", "f1", 0.9), ("b", "f1", 0.8),
                                 ("a", "f2", 0.2), ("c", "f2", 0.3),
                                 ("b", "f3", 0.7), ("c", "f3", 0.6)]:
        evaluations.record_vote(user, file_id, value)
    ledger.record_download("a", "b", "f1", 5e6)
    ledger.record_download("c", "b", "f3", 2e6)
    user_trust.rate("a", "c", 0.8)


class TestRefreshModes:
    def test_first_refresh_is_full(self):
        pipeline, evaluations, ledger, user_trust = _pipeline()
        _populate(evaluations, ledger, user_trust)
        pipeline.refresh()
        assert pipeline.last_stats.mode == "full"

    def test_second_refresh_with_delta_is_incremental(self):
        pipeline, evaluations, ledger, user_trust = _pipeline()
        _populate(evaluations, ledger, user_trust)
        pipeline.refresh()
        evaluations.record_vote("a", "f1", 0.5)
        pipeline.refresh()
        assert pipeline.last_stats.mode == "incremental"

    def test_noop_refresh_keeps_matrix_identity(self):
        pipeline, evaluations, ledger, user_trust = _pipeline()
        _populate(evaluations, ledger, user_trust)
        pipeline.refresh()
        before_trust = pipeline.trust
        before_version = pipeline.version
        pipeline.refresh()
        assert pipeline.trust is before_trust
        assert pipeline.version == before_version

    def test_refresh_with_delta_publishes_new_identity(self):
        pipeline, evaluations, ledger, user_trust = _pipeline()
        _populate(evaluations, ledger, user_trust)
        pipeline.refresh()
        before = pipeline.trust
        evaluations.record_vote("b", "f2", 0.4)
        pipeline.refresh()
        assert pipeline.trust is not before

    def test_force_full_reports_full_mode(self):
        pipeline, evaluations, ledger, user_trust = _pipeline()
        _populate(evaluations, ledger, user_trust)
        pipeline.refresh()
        pipeline.refresh(force_full=True)
        assert pipeline.last_stats.mode == "full"

    def test_invalidate_forces_full_rebuild(self):
        pipeline, evaluations, ledger, user_trust = _pipeline()
        _populate(evaluations, ledger, user_trust)
        pipeline.refresh()
        pipeline.invalidate()
        assert pipeline.has_dirty
        pipeline.refresh()
        assert pipeline.last_stats.mode == "full"


class TestIncrementalEqualsFull:
    def test_single_event_patch_matches_oracle(self):
        pipeline, evaluations, ledger, user_trust = _pipeline()
        _populate(evaluations, ledger, user_trust)
        pipeline.refresh()
        evaluations.record_vote("c", "f1", 0.85)
        pipeline.refresh()
        oracle = build_one_step_matrix(evaluations, ledger, user_trust,
                                       pipeline.config)
        assert pipeline.trust == oracle

    def test_incremental_touches_fewer_rows_than_full(self):
        config = ReputationConfig()
        pipeline, evaluations, ledger, user_trust = _pipeline(config)
        _populate(evaluations, ledger, user_trust)
        for extra in range(6):
            evaluations.record_vote(f"x{extra}", f"g{extra}", 0.5)
        pipeline.refresh()
        total = pipeline.last_stats.total_rows
        user_trust.rate("b", "a", 0.9)
        pipeline.refresh()
        stats = pipeline.last_stats
        assert stats.rows_rebuilt < total
        assert 0.0 < stats.rebuild_ratio < 1.0


class TestStatsAndObservability:
    def test_stats_count_dirty_inputs(self):
        pipeline, evaluations, ledger, user_trust = _pipeline()
        _populate(evaluations, ledger, user_trust)
        pipeline.refresh()
        evaluations.record_vote("a", "f9", 0.5)
        ledger.record_download("b", "c", "f9", 1e6)
        user_trust.rate("c", "a", 0.4)
        pipeline.refresh()
        stats = pipeline.last_stats
        assert stats.dirty_files == 1
        assert stats.dirty_rows_user == 1
        assert stats.rows_rebuilt >= 1

    def test_refresh_emits_pipeline_events(self):
        pipeline, evaluations, ledger, user_trust = _pipeline()
        pipeline.recorder = Recorder()
        _populate(evaluations, ledger, user_trust)
        pipeline.refresh()
        evaluations.record_vote("a", "f1", 0.1)
        pipeline.refresh()
        modes = [event["mode"] for event
                 in pipeline.recorder.trace.of_kind("pipeline_refresh")]
        assert modes == ["full", "incremental"]

    def test_rebuild_ratio_zero_on_empty(self):
        pipeline, *_ = _pipeline()
        pipeline.refresh()
        assert pipeline.last_stats.rebuild_ratio == 0.0


class TestStepOverrides:
    def test_reputation_at_cached_until_refresh(self):
        pipeline, evaluations, ledger, user_trust = _pipeline()
        _populate(evaluations, ledger, user_trust)
        pipeline.refresh()
        first = pipeline.reputation_at(3)
        assert pipeline.reputation_at(3) is first
        evaluations.record_vote("a", "f1", 0.3)
        pipeline.refresh()
        assert pipeline.reputation_at(3) is not first

    def test_reputation_at_default_steps_is_published_matrix(self):
        pipeline, evaluations, ledger, user_trust = _pipeline()
        _populate(evaluations, ledger, user_trust)
        pipeline.refresh()
        steps = pipeline.config.multitrust_steps
        assert pipeline.reputation_at(steps) is pipeline.reputation


class TestFacadeIntegration:
    def test_facade_uses_incremental_path_between_recomputes(self):
        system = MultiDimensionalReputationSystem(auto_refresh=False)
        system.record_vote("a", "f1", 0.9)
        system.record_vote("b", "f1", 0.8)
        system.recompute()
        system.refresh_view()
        system.record_vote("b", "f2", 0.4)
        system.recompute()
        system.refresh_view()
        assert system.pipeline.last_stats.mode == "incremental"

    def test_facade_recorder_propagates_to_pipeline(self):
        system = MultiDimensionalReputationSystem()
        recorder = Recorder()
        system.recorder = recorder
        assert system.pipeline.recorder is recorder

    def test_tier_view_cached_per_pipeline_version(self):
        system = MultiDimensionalReputationSystem()
        system.record_vote("a", "f1", 0.9)
        system.record_vote("b", "f1", 0.8)
        view = system.tier_view()
        assert system.tier_view() is view
        system.record_vote("b", "f2", 0.4)
        assert system.tier_view() is not view

    def test_dense_backend_config_accepted_end_to_end(self):
        config = ReputationConfig(matmul_backend="dense",
                                  multitrust_steps=2)
        system = MultiDimensionalReputationSystem(config)
        system.record_vote("a", "f1", 0.9)
        system.record_vote("b", "f1", 0.8)
        matrix = system.reputation_matrix()
        assert matrix.get("a", "b") >= 0.0
        assert system.pipeline.last_stats.backend == "dense"

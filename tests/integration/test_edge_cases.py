"""Edge-case battery: degenerate inputs must degrade gracefully, not crash.

Each case documents a boundary a downstream user will eventually hit:
hostile-majority populations, catalogs with no (or only) fakes, empty
behavioural histories, one-node DHTs, and extreme configurations.
"""

import random

import pytest

from repro.baselines import ALL_MECHANISMS, MultiDimensionalMechanism
from repro.core import (MultiDimensionalReputationSystem, ReputationConfig,
                        TrustMatrix)
from repro.dht import DHTNetwork, EvaluationOverlay, KeyAuthority
from repro.simulator import (FileSharingSimulation, ScenarioSpec,
                             SimulationConfig)
from repro.traces import FileCatalog, MazeTraceGenerator, TraceParameters

DAY = 24 * 3600.0


class TestDegeneratePopulations:
    def test_all_polluters_world_runs(self):
        config = SimulationConfig(
            scenario=ScenarioSpec(honest=0, polluters=8),
            duration_seconds=0.25 * DAY, num_files=20,
            request_rate=0.005, seed=1)
        metrics = FileSharingSimulation(
            config, MultiDimensionalMechanism()).run()
        assert metrics.total_requests >= 0

    def test_all_free_riders_cannot_download_anything(self):
        """Nobody shares: every request dies for lack of an uploader."""
        config = SimulationConfig(
            scenario=ScenarioSpec(honest=0, free_riders=8),
            duration_seconds=0.25 * DAY, num_files=20,
            request_rate=0.01, seed=1, use_file_filtering=False)
        simulation = FileSharingSimulation(config, ALL_MECHANISMS["null"]())
        metrics = simulation.run()
        downloads = sum(stats.total_downloads
                        for stats in metrics.per_class.values())
        assert downloads == 0
        rejected = sum(stats.requests_rejected
                       for stats in metrics.per_class.values())
        assert rejected == metrics.total_requests

    def test_two_peer_minimum_population(self):
        config = SimulationConfig(
            scenario=ScenarioSpec(honest=2),
            duration_seconds=0.25 * DAY, num_files=10,
            request_rate=0.005, seed=1)
        FileSharingSimulation(config, ALL_MECHANISMS["null"]()).run()


class TestDegenerateCatalogs:
    def test_all_fake_catalog(self):
        config = SimulationConfig(
            scenario=ScenarioSpec(honest=8, polluters=2),
            duration_seconds=0.25 * DAY, num_files=15, fake_ratio=1.0,
            request_rate=0.005, seed=2)
        metrics = FileSharingSimulation(
            config, MultiDimensionalMechanism()).run()
        for stats in metrics.per_class.values():
            assert stats.real_downloads == 0

    def test_no_fake_catalog(self):
        config = SimulationConfig(
            scenario=ScenarioSpec(honest=8),
            duration_seconds=0.25 * DAY, num_files=15, fake_ratio=0.0,
            request_rate=0.005, seed=2)
        metrics = FileSharingSimulation(
            config, MultiDimensionalMechanism()).run()
        assert metrics.overall_fake_fraction == 0.0
        assert metrics.fake_removal_latencies == []

    def test_single_file_catalog(self):
        catalog = FileCatalog.generate(1, random.Random(1))
        assert len(catalog) == 1


class TestEmptyHistories:
    def test_fresh_system_answers_all_queries(self):
        system = MultiDimensionalReputationSystem()
        assert system.user_reputation("a", "b") == 0.0
        assert system.global_reputation() == {}
        judgement = system.judge_file("a", "anything")
        assert judgement.blind
        level = system.service_level("a", "b")
        assert level.bandwidth_quota > 0
        assert system.order_request_queue("a", []) == []

    def test_every_mechanism_queryable_before_any_signal(self):
        for factory in ALL_MECHANISMS.values():
            mechanism = factory()
            mechanism.refresh()
            assert mechanism.reputation("a", "b") == 0.0
            assert mechanism.file_score("a", "f") is None

    def test_empty_matrix_operations(self):
        empty = TrustMatrix()
        assert empty.power(3) == empty
        assert empty.row_normalized() == empty
        assert empty.matmul(empty) == empty
        assert empty.density() == 0.0


class TestDegenerateDHT:
    def test_single_node_overlay_full_cycle(self):
        overlay = EvaluationOverlay(DHTNetwork(), KeyAuthority())
        overlay.register_user("loner")
        overlay.publish("loner", "file", 0.9, now=0.0)
        retrieved = overlay.retrieve("loner", "file", now=1.0)
        assert retrieved.evaluations == {"loner": 0.9}

    def test_retrieval_of_never_published_file(self):
        overlay = EvaluationOverlay(DHTNetwork(), KeyAuthority())
        for user in ("a", "b", "c"):
            overlay.register_user(user)
        retrieved = overlay.retrieve("a", "ghost-file", now=0.0)
        assert retrieved.owners == []
        assert retrieved.evaluations == {}


class TestExtremeConfigs:
    def test_zero_consumption_delay(self):
        config = SimulationConfig(
            scenario=ScenarioSpec(honest=6, polluters=2),
            duration_seconds=0.25 * DAY, num_files=15,
            request_rate=0.005, seed=3,
            mean_consumption_delay_seconds=0.0)
        FileSharingSimulation(config, ALL_MECHANISMS["null"]()).run()

    def test_extreme_multitrust_steps(self):
        config = ReputationConfig(multitrust_steps=8, alpha=0.0, beta=0.0,
                                  gamma=1.0)
        system = MultiDimensionalReputationSystem(config)
        system.record_rank("a", "b", 1.0)
        system.record_rank("b", "a", 1.0)
        # An 8-step walk on a pure 2-cycle lands back home with full mass.
        assert system.reputation_matrix().get("a", "a") == pytest.approx(1.0)

    def test_zero_library_trace_still_generates(self):
        generated = MazeTraceGenerator(TraceParameters(
            num_users=20, num_files=30, num_actions=100, trace_days=2.0,
            library_size=0, seed=4)).generate()
        assert len(generated.trace) > 0

    def test_trace_with_zero_actions(self):
        generated = MazeTraceGenerator(TraceParameters(
            num_users=10, num_files=10, num_actions=0, trace_days=1.0,
            seed=4)).generate()
        assert len(generated.trace) == 0

"""Composition: the evaluation overlay over the round-stabilising DHT.

The overlay was built against the oracle network; this verifies it also
works over :class:`StabilizingDHTNetwork` — i.e. the Section 4 framework
survives a substrate where repairs take real rounds, as long as the
deployment runs stabilisation between churn and traffic (which the
maintenance tick does in practice).
"""

import pytest

from repro.core import ReputationConfig
from repro.dht import EvaluationOverlay, KeyAuthority
from repro.dht.stabilization import StabilizingDHTNetwork


@pytest.fixture
def overlay():
    network = StabilizingDHTNetwork()
    overlay = EvaluationOverlay(network, KeyAuthority(),
                                config=ReputationConfig(eta=0.0, rho=1.0),
                                replication=3, record_ttl=10_000.0)
    for index in range(24):
        overlay.register_user(f"user-{index:02d}")
    network.stabilize_until_consistent()
    return overlay


class TestOverlayOnStabilizingRing:
    def test_publish_retrieve_after_convergence(self, overlay):
        overlay.publish("user-01", "file-x", 0.8, now=0.0)
        retrieved = overlay.retrieve("user-05", "file-x", now=1.0)
        assert retrieved.evaluations == {"user-01": 0.8}

    def test_churn_then_stabilize_then_retrieve(self, overlay):
        overlay.publish("user-01", "file-x", 0.8, now=0.0)
        network = overlay.network
        for index in (3, 7, 11):
            network.fail(f"user-{index:02d}")
        network.stabilize_until_consistent()
        # With replication 3, at least one replica of the record survives a
        # three-node failure with high probability; republication restores
        # the rest either way.
        overlay.republish_all("user-01", now=5.0)
        retrieved = overlay.retrieve("user-20", "file-x", now=6.0)
        assert retrieved.evaluations == {"user-01": 0.8}

    def test_join_after_traffic_then_converge(self, overlay):
        overlay.publish("user-02", "file-y", 0.6, now=0.0)
        overlay.register_user("late-joiner")
        overlay.network.stabilize_until_consistent()
        retrieved = overlay.retrieve("late-joiner", "file-y", now=1.0)
        assert retrieved.evaluations == {"user-02": 0.6}

    def test_full_pipeline_reputation_over_stabilizing_ring(self, overlay):
        for user, value in (("user-01", 0.9), ("user-02", 0.9),
                            ("user-03", 0.1)):
            for file_id in ("s1", "s2"):
                overlay.publish(user, file_id, value, now=0.0)
        rm = overlay.compute_reputation_matrix("user-01",
                                               ["user-02", "user-03"])
        assert (rm.get("user-01", "user-02")
                > rm.get("user-01", "user-03"))

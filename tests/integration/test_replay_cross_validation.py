"""Cross-validation: the fast Figure 1 replay vs. exact Eq. 2 semantics.

``CoverageReplayer`` decides coverage with set intersections for speed.
This test replays the same trace while maintaining a real
:class:`EvaluationStore` and asking :func:`file_trust` (the literal Eq. 2
implementation) whether an uploader->downloader edge exists, record by
record.  Both deciders must agree on *every* request, for full and partial
evaluation coverage.
"""

import random

import pytest

from repro.core import EvaluationStore, ReputationConfig, file_trust
from repro.traces import CoverageReplayer, MazeTraceGenerator, TraceParameters

DAY = 24 * 3600.0


@pytest.fixture(scope="module")
def generated():
    return MazeTraceGenerator(TraceParameters(
        num_users=80, num_files=100, num_actions=800, trace_days=6.0,
        library_size=6, seed=23)).generate()


def _exact_replay(generated, evaluation_coverage, seed):
    """Per-record coverage decisions via the real Eq. 2 machinery."""
    config = ReputationConfig(min_overlap=1)
    rng = random.Random(seed)
    store = EvaluationStore(config=config)

    # Mirror the replayer's seeding order exactly.
    for file_id, holder_ids in generated.initial_holdings.items():
        for user_id in holder_ids:
            if rng.random() < evaluation_coverage:
                store.record_implicit(user_id, file_id, 1.0)

    decisions = []
    for record in generated.trace:
        trust = file_trust(store, record.uploader_id, record.downloader_id,
                           config)
        decisions.append(trust is not None)
        if rng.random() < evaluation_coverage:
            store.record_implicit(record.downloader_id, record.content_hash,
                                  1.0)
    return decisions


def _fast_replay_decisions(generated, evaluation_coverage, seed):
    """Recover the fast replayer's per-record decisions via its internals."""
    replayer = CoverageReplayer(generated, evaluation_coverage, seed=seed)
    rng = random.Random(seed)
    evaluated = {}
    replayer._seed_initial_evaluations(evaluated, rng)
    decisions = []
    for record in generated.trace:
        decisions.append(replayer._is_covered(record, evaluated, {}, set()))
        replayer._apply_record(record, evaluated, {}, set(), rng)
    return decisions


class TestReplayAgreement:
    @pytest.mark.parametrize("coverage", [0.1, 0.5, 1.0])
    def test_per_record_agreement(self, generated, coverage):
        exact = _exact_replay(generated, coverage, seed=5)
        fast = _fast_replay_decisions(generated, coverage, seed=5)
        assert exact == fast

    def test_aggregate_matches_series(self, generated):
        coverage = 0.5
        exact = _exact_replay(generated, coverage, seed=5)
        series = CoverageReplayer(generated, coverage, seed=5).run()
        assert sum(exact) == sum(point.covered for point in series.points)
        assert len(exact) == sum(point.total for point in series.points)

"""Cross-module integration tests: the paper's full story end to end."""

import pytest

from repro.baselines import ALL_MECHANISMS, MultiDimensionalMechanism
from repro.core import (MultiDimensionalReputationSystem, ReputationConfig)
from repro.dht import DHTNetwork, EvaluationOverlay, KeyAuthority
from repro.simulator import (FileSharingSimulation, ScenarioSpec,
                             SimulationConfig)
from repro.traces import (CoverageReplayer, MazeTraceGenerator,
                          TraceParameters)

DAY = 24 * 3600.0


class TestTraceToReputationPipeline:
    """Feed a synthetic Maze trace into the full reputation system."""

    @pytest.fixture(scope="class")
    def system(self):
        generated = MazeTraceGenerator(TraceParameters(
            num_users=100, num_files=120, num_actions=2500,
            trace_days=10.0, seed=3)).generate()
        config = ReputationConfig(
            retention_saturation_seconds=10.0 * DAY / 3)
        system = MultiDimensionalReputationSystem(config, auto_refresh=False)
        horizon = 10.0 * DAY
        for record in generated.trace:
            system.record_download(record.downloader_id, record.uploader_id,
                                   record.content_hash, record.size_bytes,
                                   record.timestamp)
            retention = horizon - record.timestamp
            system.record_retention(record.downloader_id, record.content_hash,
                                    retention, horizon)
        system.recompute()
        return system

    def test_one_step_matrix_nonempty(self, system):
        assert system.one_step_matrix().entry_count() > 100

    def test_reputations_are_pairwise(self, system):
        matrix = system.reputation_matrix()
        rows = matrix.row_ids()
        assert len(rows) > 50

    def test_global_projection_covers_population(self, system):
        scores = system.global_reputation()
        assert len(scores) > 50


class TestSimulatorWithEveryMechanism:
    """Every registered mechanism must survive a full simulation run."""

    @pytest.mark.parametrize("name", sorted(ALL_MECHANISMS))
    def test_mechanism_completes_run(self, name):
        config = SimulationConfig(
            scenario=ScenarioSpec(honest=12, polluters=2, free_riders=2),
            duration_seconds=0.5 * DAY, num_files=40,
            request_rate=0.01, seed=5)
        metrics = FileSharingSimulation(config, ALL_MECHANISMS[name]()).run()
        assert metrics.total_requests > 0


class TestPaperStory:
    """The paper's headline claims, checked end to end at small scale."""

    def test_multidimensional_beats_null_on_pollution(self):
        config = SimulationConfig(
            scenario=ScenarioSpec(honest=25, polluters=5),
            duration_seconds=2 * DAY, num_files=80,
            request_rate=0.02, seed=7)
        reputation_config = ReputationConfig(
            retention_saturation_seconds=config.duration_seconds / 3)
        null_metrics = FileSharingSimulation(
            config, ALL_MECHANISMS["null"]()).run()
        md_metrics = FileSharingSimulation(
            config, MultiDimensionalMechanism(reputation_config)).run()
        assert (md_metrics.overall_fake_fraction
                < null_metrics.overall_fake_fraction * 0.8)

    def test_coverage_ordering_k5_k20_k100(self):
        """Figure 1's qualitative ordering on a fresh trace."""
        generated = MazeTraceGenerator(TraceParameters(
            num_users=120, num_files=150, num_actions=3000,
            trace_days=8.0, seed=13)).generate()
        k5 = CoverageReplayer(generated, 0.05, seed=1).run().overall
        k20 = CoverageReplayer(generated, 0.20, seed=1).run().overall
        k100 = CoverageReplayer(generated, 1.0, seed=1).run().overall
        assert k5 < k20 < k100
        assert k100 > 0.7


class TestDHTBackedReputation:
    """The DHT overlay must agree with the in-process file-trust pipeline."""

    def test_overlay_reputation_matches_core(self):
        config = ReputationConfig(eta=0.0, rho=1.0)
        overlay = EvaluationOverlay(DHTNetwork(), KeyAuthority(),
                                    config=config)
        system = MultiDimensionalReputationSystem(
            config.replace(alpha=1.0, beta=0.0, gamma=0.0))

        profiles = {
            "alice": {"f1": 0.9, "f2": 0.8, "f3": 0.1},
            "bob": {"f1": 0.9, "f2": 0.7, "f3": 0.2},
            "mallory": {"f1": 0.1, "f2": 0.2, "f3": 0.9},
        }
        for user_id in profiles:
            overlay.register_user(user_id)
        for user_id, votes in profiles.items():
            for file_id, vote in votes.items():
                overlay.publish(user_id, file_id, vote, now=0.0)
                system.record_vote(user_id, file_id, vote)

        overlay_rm = overlay.compute_reputation_matrix(
            "alice", ["bob", "mallory"])
        core_rm = system.reputation_matrix()
        # Same ordering: bob (similar tastes) above mallory (opposed).
        assert (overlay_rm.get("alice", "bob")
                > overlay_rm.get("alice", "mallory"))
        assert (core_rm.get("alice", "bob")
                > core_rm.get("alice", "mallory"))

    def test_dht_survives_simulated_churn_with_republication(self):
        overlay = EvaluationOverlay(DHTNetwork(), KeyAuthority(),
                                    replication=3, record_ttl=100.0)
        users = [f"u{i:02d}" for i in range(20)]
        for user_id in users:
            overlay.register_user(user_id)
        overlay.publish("u00", "precious", 0.9, now=0.0)

        # Churn: kill a third of the nodes, add new ones, republish.
        now = 0.0
        for round_number in range(3):
            now += 50.0
            for index in range(round_number * 3, round_number * 3 + 3):
                overlay.network.fail(users[index + 1])
            overlay.register_user(f"new-{round_number}")
            overlay.republish_all("u00", now=now)

        retrieved = overlay.retrieve("u00", "precious", now=now + 1.0)
        assert retrieved.evaluations == {"u00": 0.9}

"""Smoke tests for the ``python -m repro`` entry point."""

import subprocess
import sys


def _run_module(*args):
    return subprocess.run([sys.executable, "-m", "repro", *args],
                          capture_output=True, text=True, timeout=120)


class TestMainModule:
    def test_help_exits_zero(self):
        result = _run_module("--help")
        assert result.returncode == 0
        assert "gen-trace" in result.stdout
        assert "simulate" in result.stdout

    def test_no_command_exits_nonzero(self):
        result = _run_module()
        assert result.returncode != 0

    def test_subcommand_help(self):
        result = _run_module("simulate", "--help")
        assert result.returncode == 0
        assert "--scenario" in result.stdout
        assert "--mechanism" in result.stdout

    def test_small_simulation_via_module(self):
        result = _run_module("simulate", "--mechanism", "null",
                             "--honest", "6", "--catalog", "15",
                             "--days", "0.1", "--request-rate", "0.005")
        assert result.returncode == 0, result.stderr
        assert "overall fake fraction" in result.stdout

"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs import read_events
from repro.obs.traceio import iter_trace_events
from repro.traces import read_csv, read_jsonl


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_unknown_mechanism_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--mechanism", "magic"])


class TestGenTrace:
    def test_writes_jsonl(self, tmp_path, capsys):
        output = tmp_path / "trace.jsonl"
        code = main(["gen-trace", str(output), "--users", "60",
                     "--files", "80", "--actions", "400", "--days", "5",
                     "--library", "5", "--seed", "3"])
        assert code == 0
        trace = read_jsonl(output)
        assert len(trace) > 300
        assert "download records" in capsys.readouterr().out

    def test_writes_csv(self, tmp_path, capsys):
        output = tmp_path / "trace.csv"
        code = main(["gen-trace", str(output), "--users", "60",
                     "--files", "80", "--actions", "200", "--days", "5"])
        assert code == 0
        assert len(read_csv(output)) > 100

    def test_deterministic_for_seed(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        argv = ["gen-trace", None, "--users", "50", "--files", "60",
                "--actions", "200", "--days", "5", "--seed", "9"]
        argv[1] = str(a)
        main(list(argv))
        argv[1] = str(b)
        main(list(argv))
        assert a.read_text() == b.read_text()


class TestTraceStats:
    def test_stats_on_generated_trace(self, tmp_path, capsys):
        output = tmp_path / "trace.jsonl"
        main(["gen-trace", str(output), "--users", "60", "--files", "80",
              "--actions", "400", "--days", "5"])
        capsys.readouterr()
        code = main(["trace-stats", str(output)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Zipf" in out
        assert "records" in out

    def test_empty_trace_fails(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["trace-stats", str(path)]) == 1


class TestCoverage:
    def test_coverage_sweep_prints_rows(self, capsys):
        code = main(["coverage", "--users", "80", "--files", "100",
                     "--actions", "500", "--days", "5", "--library", "10",
                     "--k", "0.1", "1.0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "10%" in out and "100%" in out

    def test_invalid_k_rejected(self, capsys):
        assert main(["coverage", "--k", "1.5"]) == 1


class TestSimulate:
    def test_null_simulation(self, capsys):
        code = main(["simulate", "--mechanism", "null", "--honest", "12",
                     "--polluters", "2", "--free-riders", "2",
                     "--catalog", "40", "--days", "0.5",
                     "--request-rate", "0.01"])
        assert code == 0
        out = capsys.readouterr().out
        assert "overall fake fraction" in out
        assert "honest" in out

    def test_multidimensional_simulation(self, capsys):
        code = main(["simulate", "--honest", "12", "--polluters", "2",
                     "--catalog", "40", "--days", "0.5",
                     "--request-rate", "0.01"])
        assert code == 0
        assert "multidimensional" in capsys.readouterr().out

    def test_toggles_accepted(self, capsys):
        code = main(["simulate", "--mechanism", "tit-for-tat",
                     "--honest", "10", "--catalog", "30", "--days", "0.25",
                     "--request-rate", "0.01", "--no-filtering",
                     "--no-differentiation"])
        assert code == 0


_SIMULATE_SMALL = ["simulate", "--honest", "8", "--free-riders", "2",
                   "--polluters", "2", "--catalog", "30", "--days", "0.25",
                   "--request-rate", "0.02", "--seed", "5"]
_CHAOS_SMALL = ["chaos", "--loss", "0.1", "--churn", "0.3", "--peers", "12",
                "--files", "16", "--rounds", "8", "--seed", "3"]


class TestObservabilityOutputs:
    def test_simulate_writes_trace_and_metrics(self, tmp_path, capsys):
        trace = tmp_path / "events.jsonl"
        metrics = tmp_path / "metrics.json"
        code = main(_SIMULATE_SMALL + ["--multitrust-steps", "3",
                                       "--trace-out", str(trace),
                                       "--metrics-out", str(metrics)])
        assert code == 0
        out = capsys.readouterr().out
        assert "wrote" in out and "events" in out
        assert "outstanding fake copies" in out
        events = read_events(str(trace))
        kinds = {event["event"] for event in events}
        assert {"request", "download",
                "multitrust_iteration"} <= kinds
        snapshot = json.loads(metrics.read_text())
        assert snapshot["counters"]["sim.requests.total"] > 0
        assert "sim.wait_seconds{cls=honest}" in snapshot["histograms"]

    def test_simulate_trace_deterministic_for_seed(self, tmp_path):
        paths = [tmp_path / name for name in
                 ("a.jsonl", "b.jsonl", "am.json", "bm.json")]
        for trace, metric in ((paths[0], paths[2]), (paths[1], paths[3])):
            main(_SIMULATE_SMALL + ["--trace-out", str(trace),
                                    "--metrics-out", str(metric)])
        assert paths[0].read_bytes() == paths[1].read_bytes()
        assert paths[2].read_bytes() == paths[3].read_bytes()

    def test_chaos_writes_trace_and_metrics(self, tmp_path, capsys):
        trace = tmp_path / "events.jsonl"
        metrics = tmp_path / "metrics.json"
        code = main(_CHAOS_SMALL + ["--trace-out", str(trace),
                                    "--metrics-out", str(metrics)])
        assert code == 0
        assert "incomplete" in capsys.readouterr().out
        kinds = {event["event"] for event in read_events(str(trace))}
        assert {"chaos_cell_start", "dht_lookup", "dht_retrieve",
                "chaos_cell_end"} <= kinds
        snapshot = json.loads(metrics.read_text())
        assert snapshot["counters"]["dht.lookups"] > 0

    def test_chaos_trace_deterministic_for_seed(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        for path in (a, b):
            main(_CHAOS_SMALL + ["--trace-out", str(path)])
        assert a.read_bytes() == b.read_bytes()

    def test_no_flags_writes_nothing(self, tmp_path, capsys):
        code = main(_SIMULATE_SMALL)
        assert code == 0
        assert "wrote" not in capsys.readouterr().out
        assert list(tmp_path.iterdir()) == []


class TestReport:
    def _trace(self, tmp_path):
        trace = tmp_path / "events.jsonl"
        main(_SIMULATE_SMALL + ["--multitrust-steps", "3",
                                "--trace-out", str(trace)])
        return trace

    def test_report_renders_sections(self, tmp_path, capsys):
        trace = self._trace(tmp_path)
        capsys.readouterr()
        assert main(["report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "Event counts" in out
        assert "wait p95" in out
        assert "Multitrust convergence" in out
        assert "honest" in out

    def test_report_on_chaos_trace_shows_dht(self, tmp_path, capsys):
        trace = tmp_path / "events.jsonl"
        main(_CHAOS_SMALL + ["--trace-out", str(trace)])
        capsys.readouterr()
        assert main(["report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "DHT lookup cost" in out
        assert "failed lookups" in out

    def test_missing_trace_fails(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "absent.jsonl")]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_empty_trace_summarises_to_nothing(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["report", str(path)]) == 0
        assert "trace is empty" in capsys.readouterr().out

    def test_empty_trace_json_has_full_schema(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["report", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total_events"] == 0
        assert payload["event_counts"] == {}

    def test_corrupt_trace_fails(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        assert main(["report", str(path)]) == 1
        assert "cannot read" in capsys.readouterr().err


class TestBenchObs:
    def test_writes_stamped_snapshot(self, tmp_path, capsys):
        out = tmp_path / "BENCH_obs.json"
        assert main(["bench-obs", "--out", str(out), "--seed", "5"]) == 0
        snapshot = json.loads(out.read_text())
        assert snapshot["seed"] == 5
        assert {"config_hash", "git_sha", "timings"} <= set(snapshot)
        assert "instrumented" in capsys.readouterr().out


class TestReportJson:
    def test_json_output_round_trips(self, tmp_path, capsys):
        trace = tmp_path / "events.jsonl"
        main(_SIMULATE_SMALL + ["--trace-out", str(trace)])
        capsys.readouterr()
        assert main(["report", str(trace), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == 2
        assert payload["total_events"] > 0
        assert "download" in payload["event_counts"]
        assert "Event counts" not in json.dumps(payload)


class TestAlertsOut:
    def test_chaos_alerts_written_and_replayable(self, tmp_path, capsys):
        trace = tmp_path / "events.jsonl"
        alerts = tmp_path / "alerts.jsonl"
        code = main(["chaos", "--loss", "0.2", "--churn", "0.5",
                     "--peers", "12", "--files", "16", "--rounds", "20",
                     "--seed", "3", "--trace-out", str(trace),
                     "--alerts-out", str(alerts)])
        assert code == 0
        assert "alerts" in capsys.readouterr().out
        lines = [json.loads(line) for line
                 in alerts.read_text().splitlines()]
        assert lines, "lossy churny chaos must raise alerts"
        assert all({"t", "detector", "severity", "message"} <= set(line)
                   for line in lines)
        # The trace carries the same alerts, and offline replay agrees.
        capsys.readouterr()
        assert main(["monitor", str(trace)]) == 0
        out = capsys.readouterr().out
        assert f"reproduced all {len(lines)} recorded alerts" in out

    def test_alerts_out_deterministic_for_seed(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        for path in (a, b):
            main(_CHAOS_SMALL + ["--alerts-out", str(path)])
        assert a.read_bytes() == b.read_bytes()

    def test_simulate_accepts_alerts_out(self, tmp_path):
        alerts = tmp_path / "alerts.jsonl"
        assert main(_SIMULATE_SMALL + ["--alerts-out", str(alerts)]) == 0
        assert alerts.exists()


class TestMonitorCommand:
    def test_quiet_trace_reports_no_alerts(self, tmp_path, capsys):
        trace = tmp_path / "events.jsonl"
        main(_SIMULATE_SMALL + ["--trace-out", str(trace)])
        capsys.readouterr()
        assert main(["monitor", str(trace)]) == 0
        assert "no alerts raised" in capsys.readouterr().out

    def test_monitor_writes_alerts_out(self, tmp_path, capsys):
        trace = tmp_path / "events.jsonl"
        main(_CHAOS_SMALL + ["--loss", "0.3", "--trace-out", str(trace)])
        capsys.readouterr()
        alerts = tmp_path / "alerts.jsonl"
        assert main(["monitor", str(trace),
                     "--alerts-out", str(alerts)]) == 0
        assert "wrote" in capsys.readouterr().out
        assert alerts.exists()

    def test_divergent_trace_fails_replay_check(self, tmp_path, capsys):
        trace = tmp_path / "events.jsonl"
        trace.write_text(
            json.dumps({"seq": 0, "t": 1.0, "event": "request",
                        "cls": "honest"}) + "\n" +
            json.dumps({"seq": 1, "t": 2.0, "event": "alert",
                        "detector": "ghost", "severity": "critical",
                        "message": "never reproducible"}) + "\n")
        assert main(["monitor", str(trace)]) == 1
        assert "replay check FAILED" in capsys.readouterr().err

    def test_missing_trace_fails(self, tmp_path, capsys):
        assert main(["monitor", str(tmp_path / "absent.jsonl")]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_empty_trace_is_quiet(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["monitor", str(path)]) == 0
        assert "no alerts raised" in capsys.readouterr().out


class TestDashboardCommand:
    def test_writes_selfcontained_html(self, tmp_path, capsys):
        trace = tmp_path / "events.jsonl"
        main(_SIMULATE_SMALL + ["--trace-out", str(trace)])
        capsys.readouterr()
        out = tmp_path / "dash.html"
        assert main(["dashboard", str(trace), "-o", str(out)]) == 0
        assert "bytes of HTML" in capsys.readouterr().out
        document = out.read_text()
        assert document.startswith("<!DOCTYPE html>")
        assert "<script" not in document
        assert "https://" not in document

    def test_missing_trace_fails(self, tmp_path, capsys):
        assert main(["dashboard", str(tmp_path / "no.jsonl"),
                     "-o", str(tmp_path / "dash.html")]) == 1
        assert not (tmp_path / "dash.html").exists()


class TestDiffTraceCommand:
    def _traces(self, tmp_path):
        calm = tmp_path / "calm.jsonl"
        rough = tmp_path / "rough.jsonl"
        main(_CHAOS_SMALL + ["--loss", "0.0", "--churn", "0.0",
                             "--trace-out", str(calm)])
        main(_CHAOS_SMALL + ["--loss", "0.4", "--churn", "0.6",
                             "--trace-out", str(rough)])
        return calm, rough

    def test_identical_traces_report_no_regressions(self, tmp_path,
                                                    capsys):
        calm, _ = self._traces(tmp_path)
        capsys.readouterr()
        assert main(["diff-trace", str(calm), str(calm)]) == 0
        assert "no regressions flagged" in capsys.readouterr().out

    def test_degraded_trace_flags_regressions_in_text(self, tmp_path,
                                                      capsys):
        calm, rough = self._traces(tmp_path)
        capsys.readouterr()
        assert main(["diff-trace", str(calm), str(rough),
                     "--label-a", "calm", "--label-b", "rough"]) == 0
        out = capsys.readouterr().out
        assert "Trace diff" in out
        assert "regressions:" in out

    def test_fail_on_regression_sets_exit_code(self, tmp_path, capsys):
        calm, rough = self._traces(tmp_path)
        capsys.readouterr()
        assert main(["diff-trace", str(calm), str(rough),
                     "--fail-on-regression"]) == 1

    def test_json_output(self, tmp_path, capsys):
        calm, rough = self._traces(tmp_path)
        capsys.readouterr()
        assert main(["diff-trace", str(calm), str(rough), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert {"a", "b", "deltas", "regressions"} <= set(payload)
        assert payload["a"]["summary"]["schema"] == 2

    def test_missing_side_fails(self, tmp_path, capsys):
        calm, _ = self._traces(tmp_path)
        assert main(["diff-trace", str(calm),
                     str(tmp_path / "absent.jsonl")]) == 1


class TestBenchPipeline:
    _SMALL = ["--sizes", "20", "--events", "5", "--seed", "5"]

    def test_writes_stamped_snapshot(self, tmp_path, capsys):
        out = tmp_path / "BENCH_pipeline.json"
        assert main(["bench-pipeline", "--out", str(out)]
                    + self._SMALL) == 0
        snapshot = json.loads(out.read_text())
        assert snapshot["seed"] == 5
        assert {"config_hash", "git_sha", "refresh", "backend"} \
            <= set(snapshot)
        assert snapshot["refresh"][0]["peers"] == 20
        assert snapshot["backend"]["density"] > 0.3
        assert "Refresh latency" in capsys.readouterr().out

    def test_history_appended_and_generous_gate_passes(self, tmp_path,
                                                       capsys):
        out = tmp_path / "BENCH_pipeline.json"
        history = tmp_path / "BENCH_pipeline_history.jsonl"
        code = main(["bench-pipeline", "--out", str(out),
                     "--history", str(history), "--min-speedup", "0.001"]
                    + self._SMALL)
        assert code == 0
        assert "pipeline gate passed" in capsys.readouterr().out
        lines = history.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["seed"] == 5

    def test_impossible_gate_fails(self, tmp_path, capsys):
        out = tmp_path / "BENCH_pipeline.json"
        code = main(["bench-pipeline", "--out", str(out),
                     "--min-speedup", "1e9"] + self._SMALL)
        assert code == 1
        assert "below" in capsys.readouterr().err


class TestBenchObsGate:
    def test_history_appended_and_generous_gate_passes(self, tmp_path,
                                                       capsys):
        out = tmp_path / "BENCH_obs.json"
        history = tmp_path / "BENCH_history.jsonl"
        code = main(["bench-obs", "--out", str(out), "--seed", "5",
                     "--history", str(history),
                     "--max-overhead", "1000"])
        assert code == 0
        assert "overhead gate passed" in capsys.readouterr().out
        lines = history.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["seed"] == 5

    def test_impossible_gate_fails(self, tmp_path, capsys):
        out = tmp_path / "BENCH_obs.json"
        code = main(["bench-obs", "--out", str(out), "--seed", "5",
                     "--max-overhead", "0.0"])
        assert code == 1
        assert "exceeds" in capsys.readouterr().err


class TestTraceOutFormats:
    def test_binary_trace_out_feeds_every_consumer(self, tmp_path, capsys):
        trace = tmp_path / "events.bin"
        assert main(_SIMULATE_SMALL + ["--trace-out", str(trace)]) == 0
        assert trace.read_bytes()[:8] == b"REPROTRC"
        capsys.readouterr()
        assert main(["report", str(trace)]) == 0
        assert "Event counts" in capsys.readouterr().out
        assert main(["monitor", str(trace)]) == 0
        capsys.readouterr()
        dash = tmp_path / "dash.html"
        assert main(["dashboard", str(trace), "-o", str(dash)]) == 0
        assert dash.read_text().startswith("<!DOCTYPE html>")

    def test_binary_and_jsonl_summaries_agree(self, tmp_path, capsys):
        binary = tmp_path / "events.bin"
        jsonl = tmp_path / "events.jsonl"
        main(_SIMULATE_SMALL + ["--trace-out", str(binary)])
        main(_SIMULATE_SMALL + ["--trace-out", str(jsonl)])
        capsys.readouterr()
        assert main(["report", str(binary), "--json"]) == 0
        from_binary = json.loads(capsys.readouterr().out)
        assert main(["report", str(jsonl), "--json"]) == 0
        from_jsonl = json.loads(capsys.readouterr().out)
        assert from_binary == from_jsonl


class TestTraceSubcommands:
    def _binary(self, tmp_path):
        trace = tmp_path / "events.bin"
        main(_SIMULATE_SMALL + ["--trace-out", str(trace)])
        return trace

    def test_inspect_reports_layout(self, tmp_path, capsys):
        trace = self._binary(tmp_path)
        capsys.readouterr()
        assert main(["trace", "inspect", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "binary" in out and "Event counts" in out

    def test_inspect_json(self, tmp_path, capsys):
        trace = self._binary(tmp_path)
        capsys.readouterr()
        assert main(["trace", "inspect", str(trace), "--json"]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["format"] == "binary"
        assert info["events"] > 0
        assert info["truncated"] is False

    def test_inspect_missing_file_fails(self, tmp_path, capsys):
        assert main(["trace", "inspect",
                     str(tmp_path / "absent.bin")]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_convert_round_trip_is_byte_identical(self, tmp_path, capsys):
        direct = tmp_path / "direct.jsonl"
        main(_SIMULATE_SMALL + ["--trace-out", str(direct)])
        binary = tmp_path / "events.bin"
        main(_SIMULATE_SMALL + ["--trace-out", str(binary)])
        capsys.readouterr()
        recovered = tmp_path / "recovered.jsonl"
        assert main(["trace", "convert", str(binary),
                     str(recovered)]) == 0
        assert "wrote" in capsys.readouterr().out
        assert recovered.read_bytes() == direct.read_bytes()

    def test_convert_jsonl_to_binary_and_back(self, tmp_path, capsys):
        jsonl = tmp_path / "events.jsonl"
        main(_SIMULATE_SMALL + ["--trace-out", str(jsonl)])
        binary = tmp_path / "events.bin"
        again = tmp_path / "again.jsonl"
        assert main(["trace", "convert", str(jsonl), str(binary)]) == 0
        assert main(["trace", "convert", str(binary), str(again)]) == 0
        assert again.read_bytes() == jsonl.read_bytes()

    def test_query_filters_kind_and_projects_columns(self, tmp_path,
                                                     capsys):
        trace = self._binary(tmp_path)
        capsys.readouterr()
        assert main(["trace", "query", str(trace), "--kind", "download",
                     "--columns", "cls,wait", "--limit", "5"]) == 0
        captured = capsys.readouterr()
        lines = [json.loads(line) for line
                 in captured.out.splitlines()]
        assert 0 < len(lines) <= 5
        assert all(line["event"] == "download" for line in lines)
        assert all(set(line) <= {"event", "cls", "wait"}
                   for line in lines)
        assert "matched" in captured.err

    def test_query_time_window(self, tmp_path, capsys):
        trace = self._binary(tmp_path)
        capsys.readouterr()
        assert main(["trace", "query", str(trace), "--since", "100",
                     "--until", "200"]) == 0
        lines = [json.loads(line) for line
                 in capsys.readouterr().out.splitlines()]
        assert all(100 <= line["t"] < 200 for line in lines)

    def test_compact_rechunks_binary(self, tmp_path, capsys):
        trace = self._binary(tmp_path)
        capsys.readouterr()
        compacted = tmp_path / "compacted.bin"
        assert main(["trace", "compact", str(trace), str(compacted),
                     "--chunk-events", "64"]) == 0
        assert "chunks" in capsys.readouterr().out
        # Same logical contents under the new chunking.
        assert main(["trace", "inspect", str(compacted), "--json"]) == 0
        info = json.loads(capsys.readouterr().out)
        assert main(["trace", "inspect", str(trace), "--json"]) == 0
        original = json.loads(capsys.readouterr().out)
        assert info["events"] == original["events"]
        assert info["kinds"] == original["kinds"]

    def test_bad_chunk_events_rejected(self, tmp_path, capsys):
        trace = self._binary(tmp_path)
        assert main(["trace", "compact", str(trace),
                     str(tmp_path / "o.bin"), "--chunk-events", "0"]) == 2


class TestSpanTracing:
    def _span_trace(self, tmp_path, name="spans.bin", extra=()):
        trace = tmp_path / name
        main(_SIMULATE_SMALL + ["--spans", "--trace-out", str(trace)]
             + list(extra))
        return trace

    def test_spans_flag_adds_span_records(self, tmp_path, capsys):
        trace = self._span_trace(tmp_path)
        spans = [event for event in iter_trace_events(str(trace))
                 if event["event"] == "span"]
        assert spans
        assert all({"span", "trace", "t_end", "dur", "busy"} <= set(event)
                   for event in spans)

    def test_span_trace_deterministic_for_seed(self, tmp_path):
        a = self._span_trace(tmp_path, "a.bin")
        b = self._span_trace(tmp_path, "b.bin")
        assert a.read_bytes() == b.read_bytes()

    def test_span_trace_convert_round_trip(self, tmp_path, capsys):
        trace = self._span_trace(tmp_path)
        capsys.readouterr()
        jsonl = tmp_path / "spans.jsonl"
        again = tmp_path / "again.bin"
        assert main(["trace", "convert", str(trace), str(jsonl)]) == 0
        assert main(["trace", "convert", str(jsonl), str(again)]) == 0
        assert again.read_bytes() == trace.read_bytes()

    def test_sampling_thins_traces(self, tmp_path):
        def span_count(extra):
            trace = self._span_trace(tmp_path, "sampled.bin", extra)
            return sum(1 for event in iter_trace_events(str(trace))
                       if event["event"] == "span")

        full = span_count(())
        sampled = span_count(["--span-sample", "8"])
        assert 0 < sampled < full

    def test_invalid_sample_rejected(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(_SIMULATE_SMALL + ["--span-sample", "0"])
        assert excinfo.value.code == 2
        assert "--span-sample" in capsys.readouterr().err

    def test_trace_spans_reports_operations_and_paths(self, tmp_path,
                                                      capsys):
        trace = self._span_trace(tmp_path)
        capsys.readouterr()
        assert main(["trace", "spans", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "operation" in out and "p95" in out
        assert "sim.request" in out
        assert "critical path" in out
        assert "consistency" in out

    def test_trace_spans_json_with_op_filter(self, tmp_path, capsys):
        trace = self._span_trace(tmp_path)
        capsys.readouterr()
        assert main(["trace", "spans", str(trace), "--json",
                     "--op", "sim.request"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["operations"]) == {"sim.request"}
        assert payload["operations"]["sim.request"]["count"] > 0
        assert payload["critical_paths"]["sim.request"]

    def test_trace_spans_on_chaos_shows_refresh_path(self, tmp_path,
                                                     capsys):
        trace = tmp_path / "chaos.bin"
        main(_CHAOS_SMALL + ["--spans", "--trace-out", str(trace)])
        capsys.readouterr()
        assert main(["trace", "spans", str(trace), "--json",
                     "--op", "mechanism.refresh"]) == 0
        payload = json.loads(capsys.readouterr().out)
        path = payload["critical_paths"]["mechanism.refresh"]
        assert path[0]["name"] == "mechanism.refresh"
        assert any(step["name"].startswith("dht.") for step in path)
        assert payload["inconsistent"] == 0

    def test_trace_spans_without_spans_exits_cleanly(self, tmp_path,
                                                     capsys):
        trace = tmp_path / "plain.bin"
        main(_SIMULATE_SMALL + ["--trace-out", str(trace)])
        capsys.readouterr()
        assert main(["trace", "spans", str(trace)]) == 0
        assert "no span records" in capsys.readouterr().out

    def test_flame_writes_deterministic_svg(self, tmp_path, capsys):
        trace = self._span_trace(tmp_path)
        capsys.readouterr()
        first, second = tmp_path / "a.svg", tmp_path / "b.svg"
        folded = tmp_path / "flame.folded"
        assert main(["flame", str(trace), "-o", str(first),
                     "--folded", str(folded)]) == 0
        assert "wrote" in capsys.readouterr().out
        assert main(["flame", str(trace), "-o", str(second)]) == 0
        document = first.read_text()
        assert document.startswith("<svg ")
        assert document == second.read_text()
        lines = folded.read_text().splitlines()
        assert lines and all(line.rsplit(" ", 1)[1].isdigit()
                             for line in lines)

    def test_flame_without_spans_writes_nothing(self, tmp_path, capsys):
        trace = tmp_path / "plain.bin"
        main(_SIMULATE_SMALL + ["--trace-out", str(trace)])
        capsys.readouterr()
        svg = tmp_path / "flame.svg"
        assert main(["flame", str(trace), "-o", str(svg)]) == 0
        assert "no span records" in capsys.readouterr().out
        assert not svg.exists()

    def test_flame_rejects_tiny_width(self, tmp_path, capsys):
        trace = self._span_trace(tmp_path)
        assert main(["flame", str(trace), "--width", "100"]) == 2

    def test_bench_obs_gates_span_overheads(self, tmp_path, capsys):
        out = tmp_path / "BENCH_obs.json"
        assert main(["bench-obs", "--out", str(out), "--seed", "5",
                     "--max-overhead", "1000",
                     "--max-sampled-overhead", "1000"]) == 0
        assert "sampled-overhead gate passed" in capsys.readouterr().out
        snapshot = json.loads(out.read_text())
        assert snapshot["spans"]["span_events_full"] > 0
        assert snapshot["timings"]["span_overhead_ratio"] > 0

    def test_bench_obs_impossible_sampled_gate_fails(self, tmp_path,
                                                     capsys):
        out = tmp_path / "BENCH_obs.json"
        assert main(["bench-obs", "--out", str(out), "--seed", "5",
                     "--max-sampled-overhead", "0.0"]) == 1
        assert "exceeds" in capsys.readouterr().err


class TestProfileCapture:
    def test_profile_out_then_report_folds_it_in(self, tmp_path, capsys):
        trace = tmp_path / "events.jsonl"
        profile = tmp_path / "profile.json"
        assert main(_SIMULATE_SMALL + ["--trace-out", str(trace),
                                       "--profile-out",
                                       str(profile)]) == 0
        phases = json.loads(profile.read_text())
        assert phases, "simulate must profile at least one phase"
        assert all({"calls", "p50_seconds", "p95_seconds", "p99_seconds"}
                   <= set(stats) for stats in phases.values())
        capsys.readouterr()
        assert main(["report", str(trace), "--profile",
                     str(profile)]) == 0
        assert "Profiled sections" in capsys.readouterr().out

    def test_report_json_carries_profile(self, tmp_path, capsys):
        trace = tmp_path / "events.jsonl"
        profile = tmp_path / "profile.json"
        main(_SIMULATE_SMALL + ["--trace-out", str(trace),
                                "--profile-out", str(profile)])
        capsys.readouterr()
        assert main(["report", str(trace), "--json", "--profile",
                     str(profile)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["profile"]
        assert all("p95_seconds" in stats
                   for stats in payload["profile"].values())

    def test_missing_profile_fails(self, tmp_path, capsys):
        trace = tmp_path / "events.jsonl"
        trace.write_text("")
        assert main(["report", str(trace), "--profile",
                     str(tmp_path / "absent.json")]) == 1
        assert "cannot read profile" in capsys.readouterr().err


class TestBenchTrace:
    _SMALL = ["--events", "4000", "--seed", "5", "--chunk-events", "512"]

    def test_writes_stamped_snapshot(self, tmp_path, capsys):
        out = tmp_path / "BENCH_trace.json"
        assert main(["bench-trace", "--out", str(out)]
                    + self._SMALL) == 0
        snapshot = json.loads(out.read_text())
        assert snapshot["seed"] == 5
        assert snapshot["events"] == 4000
        assert {"config_hash", "git_sha", "binary", "jsonl"} \
            <= set(snapshot)
        assert snapshot["scan_aggregates_match"] is True
        assert snapshot["roundtrip_identical"] is True
        assert "fidelity checks passed" in capsys.readouterr().out

    def test_history_appended_and_generous_gate_passes(self, tmp_path,
                                                       capsys):
        out = tmp_path / "BENCH_trace.json"
        history = tmp_path / "BENCH_history.jsonl"
        code = main(["bench-trace", "--out", str(out),
                     "--history", str(history),
                     "--min-throughput", "1"] + self._SMALL)
        assert code == 0
        assert "throughput gate passed" in capsys.readouterr().out
        lines = history.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["seed"] == 5

    def test_impossible_gate_fails(self, tmp_path, capsys):
        out = tmp_path / "BENCH_trace.json"
        code = main(["bench-trace", "--out", str(out),
                     "--min-throughput", "1e15"] + self._SMALL)
        assert code == 1
        assert "below" in capsys.readouterr().err

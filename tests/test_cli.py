"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.traces import read_csv, read_jsonl


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_unknown_mechanism_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--mechanism", "magic"])


class TestGenTrace:
    def test_writes_jsonl(self, tmp_path, capsys):
        output = tmp_path / "trace.jsonl"
        code = main(["gen-trace", str(output), "--users", "60",
                     "--files", "80", "--actions", "400", "--days", "5",
                     "--library", "5", "--seed", "3"])
        assert code == 0
        trace = read_jsonl(output)
        assert len(trace) > 300
        assert "download records" in capsys.readouterr().out

    def test_writes_csv(self, tmp_path, capsys):
        output = tmp_path / "trace.csv"
        code = main(["gen-trace", str(output), "--users", "60",
                     "--files", "80", "--actions", "200", "--days", "5"])
        assert code == 0
        assert len(read_csv(output)) > 100

    def test_deterministic_for_seed(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        argv = ["gen-trace", None, "--users", "50", "--files", "60",
                "--actions", "200", "--days", "5", "--seed", "9"]
        argv[1] = str(a)
        main(list(argv))
        argv[1] = str(b)
        main(list(argv))
        assert a.read_text() == b.read_text()


class TestTraceStats:
    def test_stats_on_generated_trace(self, tmp_path, capsys):
        output = tmp_path / "trace.jsonl"
        main(["gen-trace", str(output), "--users", "60", "--files", "80",
              "--actions", "400", "--days", "5"])
        capsys.readouterr()
        code = main(["trace-stats", str(output)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Zipf" in out
        assert "records" in out

    def test_empty_trace_fails(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["trace-stats", str(path)]) == 1


class TestCoverage:
    def test_coverage_sweep_prints_rows(self, capsys):
        code = main(["coverage", "--users", "80", "--files", "100",
                     "--actions", "500", "--days", "5", "--library", "10",
                     "--k", "0.1", "1.0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "10%" in out and "100%" in out

    def test_invalid_k_rejected(self, capsys):
        assert main(["coverage", "--k", "1.5"]) == 1


class TestSimulate:
    def test_null_simulation(self, capsys):
        code = main(["simulate", "--mechanism", "null", "--honest", "12",
                     "--polluters", "2", "--free-riders", "2",
                     "--catalog", "40", "--days", "0.5",
                     "--request-rate", "0.01"])
        assert code == 0
        out = capsys.readouterr().out
        assert "overall fake fraction" in out
        assert "honest" in out

    def test_multidimensional_simulation(self, capsys):
        code = main(["simulate", "--honest", "12", "--polluters", "2",
                     "--catalog", "40", "--days", "0.5",
                     "--request-rate", "0.01"])
        assert code == 0
        assert "multidimensional" in capsys.readouterr().out

    def test_toggles_accepted(self, capsys):
        code = main(["simulate", "--mechanism", "tit-for-tat",
                     "--honest", "10", "--catalog", "30", "--days", "0.25",
                     "--request-rate", "0.01", "--no-filtering",
                     "--no-differentiation"])
        assert code == 0

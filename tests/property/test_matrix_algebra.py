"""Algebraic property tests for TrustMatrix.

The multi-trust machinery silently assumes standard linear-algebra laws of
the sparse implementation; these tests pin them down against numpy.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TrustMatrix

IDS = [f"n{index}" for index in range(5)]


def sparse_matrices():
    entry = st.tuples(st.sampled_from(IDS), st.sampled_from(IDS),
                      st.floats(min_value=0.01, max_value=5.0))
    return st.lists(entry, max_size=15).map(_build)


def _build(entries):
    matrix = TrustMatrix()
    for i, j, value in entries:
        matrix.set(i, j, value)
    return matrix


def _dense(matrix):
    array, _ = matrix.to_dense(IDS)
    return array


class TestAlgebraicLaws:
    @given(a=sparse_matrices(), b=sparse_matrices())
    @settings(max_examples=60, deadline=None)
    def test_matmul_matches_numpy(self, a, b):
        product = a.matmul(b)
        assert np.allclose(_dense(product), _dense(a) @ _dense(b), atol=1e-9)

    @given(a=sparse_matrices(), b=sparse_matrices(), c=sparse_matrices())
    @settings(max_examples=40, deadline=None)
    def test_matmul_associative(self, a, b, c):
        left = a.matmul(b).matmul(c)
        right = a.matmul(b.matmul(c))
        assert np.allclose(_dense(left), _dense(right), atol=1e-6)

    @given(a=sparse_matrices(), b=sparse_matrices(),
           w1=st.floats(min_value=0, max_value=1),
           w2=st.floats(min_value=0, max_value=1))
    @settings(max_examples=60, deadline=None)
    def test_weighted_sum_linear(self, a, b, w1, w2):
        combined = TrustMatrix.weighted_sum([(w1, a), (w2, b)])
        assert np.allclose(_dense(combined),
                           w1 * _dense(a) + w2 * _dense(b), atol=1e-9)

    @given(a=sparse_matrices(),
           factor=st.floats(min_value=0, max_value=3))
    @settings(max_examples=60, deadline=None)
    def test_scaling_matches_numpy(self, a, factor):
        assert np.allclose(_dense(a.scaled(factor)),
                           factor * _dense(a), atol=1e-9)

    @given(a=sparse_matrices())
    @settings(max_examples=60, deadline=None)
    def test_normalization_idempotent(self, a):
        once = a.row_normalized()
        twice = once.row_normalized()
        assert np.allclose(_dense(once), _dense(twice), atol=1e-9)

    @given(a=sparse_matrices(), n=st.integers(min_value=1, max_value=5))
    @settings(max_examples=40, deadline=None)
    def test_power_via_binary_exponentiation(self, a, n):
        expected = np.linalg.matrix_power(_dense(a), n)
        assert np.allclose(_dense(a.power(n)), expected, atol=1e-6)

    @given(a=sparse_matrices())
    @settings(max_examples=60, deadline=None)
    def test_round_trip_through_dense(self, a):
        dense, ids = a.to_dense(IDS)
        assert TrustMatrix.from_dense(dense, ids) == a

"""Property tests: crash anywhere in the WAL, recover an exact prefix.

Hypothesis drives two random dimensions at once — the event interleaving
journalled into the WAL, and the byte offset the "crash" truncates the
file at.  The invariant under test is the durability contract itself:
whatever survives on disk decodes to a strict prefix of the record
stream, and recovery from it rebuilds a state exactly equal (persisted
document, checksum, trust/reputation matrices) to a live system fed the
same prefix.

Each example journals into its own ``TemporaryDirectory`` (hypothesis
does not reset function-scoped fixtures between examples, so ``tmp_path``
is unusable here).  The ``crash-recovery`` CI job runs this with
``REPRO_CHECK_INVARIANTS=1`` for in-refresh self-checks on top.
"""

import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MultiDimensionalReputationSystem
from repro.core.durability import (DurabilityManager, read_wal, recover,
                                   scan_wal, truncate_file)

from tests.durability.helpers import (FILES, USERS, assert_identical,
                                      replay_reference)

# One journallable façade event: (op, actor index, peer index, file index,
# value in [0, 1]).  Indices are resolved modulo the fixed populations so
# shrinking stays meaningful.
events = st.tuples(
    st.sampled_from(["download", "vote", "retention", "play", "friend",
                     "blacklist", "rate", "upload"]),
    st.integers(min_value=0, max_value=7),
    st.integers(min_value=0, max_value=7),
    st.integers(min_value=0, max_value=5),
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False))

interleavings = st.lists(events, min_size=1, max_size=25)


def _apply_event(system, event, when):
    op, actor, peer, file_index, value = event
    user = USERS[actor % len(USERS)]
    other = USERS[(peer if peer % len(USERS) != actor % len(USERS)
                   else peer + 1) % len(USERS)]
    file_id = FILES[file_index % len(FILES)]
    if op == "download":
        system.record_download(user, other, file_id, 1e5 + value * 1e6,
                               timestamp=when)
    elif op == "vote":
        system.record_vote(user, file_id, value, timestamp=when)
    elif op == "retention":
        system.record_retention(user, file_id, 60.0 + value * 7200.0,
                                timestamp=when)
    elif op == "play":
        system.record_play(user, file_id, value, timestamp=when)
    elif op == "friend":
        system.add_friend(user, other)
    elif op == "blacklist":
        system.add_to_blacklist(user, other)
    elif op == "rate":
        system.record_rank(user, other, value)
    else:
        system.record_real_upload(user, 1e5 + value * 1e6)


def _journal(directory, interleaving):
    """Journal one interleaving into ``directory``; returns the WAL path."""
    system = MultiDimensionalReputationSystem()
    manager = DurabilityManager(directory=directory, system=system)
    manager.attach()
    for i, event in enumerate(interleaving):
        _apply_event(system, event, when=100.0 + 10.0 * i)
    manager.close()
    return Path(directory) / "journal.wal"


@settings(max_examples=40, deadline=None)
@given(interleaving=interleavings, data=st.data())
def test_crash_at_any_byte_recovers_exact_prefix(interleaving, data):
    with tempfile.TemporaryDirectory() as workdir:
        directory = Path(workdir) / "state"
        wal = _journal(directory, interleaving)
        full = read_wal(wal)

        # Crash: the file ends at an arbitrary byte offset.
        cut = data.draw(st.integers(min_value=0,
                                    max_value=full.file_bytes - 1),
                        label="crash byte offset")
        truncate_file(wal, cut)

        scan = read_wal(wal)
        # Survivors are a strict prefix of the full stream.
        assert [r.seq for r in scan.records] == \
            [r.seq for r in full.records[:len(scan.records)]]
        assert scan.valid_bytes <= cut or cut == 0

        result = recover(directory, repair=True)
        assert result.last_seq == scan.last_seq
        assert not read_wal(wal).truncated
        assert_identical(result.system,
                         replay_reference(full.records[:len(scan.records)]))


@settings(max_examples=15, deadline=None)
@given(interleaving=interleavings)
def test_same_interleaving_writes_identical_wal_bytes(interleaving):
    with tempfile.TemporaryDirectory() as workdir:
        first = _journal(Path(workdir) / "a", interleaving)
        second = _journal(Path(workdir) / "b", interleaving)
        assert first.read_bytes() == second.read_bytes()


@settings(max_examples=25, deadline=None)
@given(interleaving=interleavings,
       garbage=st.binary(min_size=1, max_size=64))
def test_appended_garbage_never_corrupts_prefix(interleaving, garbage):
    with tempfile.TemporaryDirectory() as workdir:
        wal = _journal(Path(workdir) / "g", interleaving)
        pristine = wal.read_bytes()
        wal.write_bytes(pristine + garbage)
        scan = scan_wal(wal.read_bytes())
        clean = scan_wal(pristine)
        # Garbage may extend the log only if it forms valid next frames —
        # vanishingly unlikely, but the records that were there must
        # survive untouched.
        assert [(r.seq, r.kind, r.payload)
                for r in scan.records[:len(clean.records)]] == \
            [(r.seq, r.kind, r.payload) for r in clean.records]

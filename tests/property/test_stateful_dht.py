"""Stateful property test: DHT ring membership and routing consistency.

Random join/leave/fail sequences must preserve the Chord invariants: the
ring is a single cycle over alive nodes, every lookup from every start
terminates at the true owner, and hop counts stay bounded.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (RuleBasedStateMachine, invariant,
                                 precondition, rule)

from repro.dht import DHTNetwork, hash_key, lookup

USER_POOL = [f"peer-{index:02d}" for index in range(12)]


class DHTMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.network = DHTNetwork()
        self.alive = set()

    @rule(user=st.sampled_from(USER_POOL))
    def join(self, user):
        self.network.join(user)
        self.alive.add(user)

    @precondition(lambda self: self.alive)
    @rule(data=st.data())
    def leave_gracefully(self, data):
        user = data.draw(st.sampled_from(sorted(self.alive)))
        self.network.leave(user)
        self.alive.discard(user)

    @precondition(lambda self: self.alive)
    @rule(data=st.data())
    def fail_abruptly(self, data):
        user = data.draw(st.sampled_from(sorted(self.alive)))
        self.network.fail(user)
        self.alive.discard(user)

    @precondition(lambda self: self.alive)
    @rule(key_seed=st.text(min_size=1, max_size=8))
    def lookup_from_every_node(self, key_seed):
        key = hash_key(key_seed)
        expected = self.network.owner_of(key)
        for node in self.network.nodes():
            result = lookup(self.network, key, start=node)
            assert result.owner is expected
            assert result.hops <= 2 * max(len(self.network), 4)

    @invariant()
    def membership_agrees(self):
        assert len(self.network) == len(self.alive)
        for user in self.alive:
            assert self.network.has_node(user)

    @invariant()
    def ring_is_one_cycle(self):
        nodes = self.network.nodes()
        if not nodes:
            return
        walked = set()
        current = nodes[0]
        for _ in range(len(nodes)):
            walked.add(current.user_id)
            current = self.network.successor_of(current)
        assert walked == {node.user_id for node in nodes}
        assert current is nodes[0]

    @invariant()
    def ownership_is_consistent(self):
        nodes = self.network.nodes()
        if not nodes:
            return
        # A node owns its own id.
        for node in nodes:
            assert self.network.owner_of(node.node_id) is node


TestDHTStateful = DHTMachine.TestCase
TestDHTStateful.settings = settings(
    max_examples=25, stateful_step_count=20, deadline=None)

"""Stateful property test: the evaluation overlay vs. a naive model.

Random publish/republish/expire/fail sequences against a live overlay; a
dictionary model predicts which evaluations must be retrievable.  The model
is conservative about node failures (a failure may or may not destroy a
record depending on replica placement), so it tracks a *superset* of what
can be visible and exact expiry times.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (RuleBasedStateMachine, initialize,
                                 invariant, precondition, rule)

from repro.dht import DHTNetwork, EvaluationOverlay, KeyAuthority

USERS = [f"u{index:02d}" for index in range(8)]
FILES = [f"f{index}" for index in range(5)]
TTL = 100.0


class OverlayMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.overlay = EvaluationOverlay(DHTNetwork(), KeyAuthority(),
                                         replication=2, record_ttl=TTL)
        self.now = 0.0
        # (owner, file) -> (value, expires_at, ring_epoch); what *may* be
        # visible.  ring_epoch records the membership epoch at publication:
        # any membership change afterwards may silently reassign replicas.
        self.model = {}
        self.ring_epoch = 0

    @initialize()
    def register_everyone(self):
        for user in USERS:
            self.overlay.register_user(user)

    @rule(owner=st.sampled_from(USERS), file=st.sampled_from(FILES),
          value=st.floats(min_value=0, max_value=1))
    def publish(self, owner, file, value):
        if not self.overlay.network.has_node(owner):
            self.overlay.register_user(owner)  # rejoin: membership changes
            self.ring_epoch += 1
        self.overlay.publish(owner, file, value, now=self.now)
        self.model[(owner, file)] = (value, self.now + TTL, self.ring_epoch)

    @rule(owner=st.sampled_from(USERS))
    def republish(self, owner):
        if not self.overlay.network.has_node(owner):
            return
        count = self.overlay.republish_all(owner, now=self.now)
        refreshed = 0
        for (record_owner, file), (value, _, _) in list(self.model.items()):
            if record_owner == owner:
                self.model[(record_owner, file)] = (value, self.now + TTL,
                                                    self.ring_epoch)
                refreshed += 1
        # Every modelled record of this owner is covered by the republish.
        assert count >= refreshed

    @rule(delta=st.floats(min_value=1.0, max_value=60.0))
    def advance_time(self, delta):
        self.now += delta

    @precondition(lambda self: len(self.overlay.network) > 2)
    @rule(victim=st.sampled_from(USERS))
    def fail_node(self, victim):
        if self.overlay.network.has_node(victim):
            self.overlay.network.fail(victim)
            self.ring_epoch += 1

    @invariant()
    def retrievals_are_sound(self):
        """Everything retrieved must match a live model record exactly."""
        if len(self.overlay.network) == 0:
            return
        requester = self.overlay.network.nodes()[0].user_id
        for file in FILES:
            retrieved = self.overlay.retrieve(requester, file, now=self.now)
            assert retrieved.rejected == 0  # honest publishes only
            for owner, value in retrieved.evaluations.items():
                assert (owner, file) in self.model
                model_value, expires_at, _ = self.model[(owner, file)]
                assert value == model_value
                assert self.now < expires_at

    @invariant()
    def current_epoch_fresh_records_are_visible(self):
        """Records (re)published since the last membership change must be
        retrievable until they expire."""
        if len(self.overlay.network) == 0:
            return
        requester = self.overlay.network.nodes()[0].user_id
        for (owner, file), (value, expires_at, epoch) in self.model.items():
            if self.now >= expires_at or epoch != self.ring_epoch:
                continue
            retrieved = self.overlay.retrieve(requester, file, now=self.now)
            assert retrieved.evaluations.get(owner) == value


TestOverlayStateful = OverlayMachine.TestCase
TestOverlayStateful.settings = settings(
    max_examples=25, stateful_step_count=15, deadline=None)

"""Property tests for the incentive machinery (Section 3.4 invariants)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (ActionCreditTracker, IncentiveAction,
                        ReputationConfig, ServiceDifferentiator)

reputations = st.floats(min_value=0.0, max_value=10.0)
arrivals = st.floats(min_value=0.0, max_value=1e6)


def _differentiator():
    return ServiceDifferentiator(ReputationConfig(), reference_reputation=1.0)


class TestDifferentiatorProperties:
    @given(reputation=reputations)
    def test_offset_bounded_by_config(self, reputation):
        differentiator = _differentiator()
        offset = differentiator.queue_offset(reputation)
        assert 0.0 <= offset <= ReputationConfig().max_queue_offset_seconds

    @given(reputation=reputations)
    def test_quota_within_configured_band(self, reputation):
        config = ReputationConfig()
        differentiator = ServiceDifferentiator(config,
                                               reference_reputation=1.0)
        quota = differentiator.bandwidth_quota(reputation)
        assert config.min_bandwidth_quota <= quota \
            <= config.max_bandwidth_quota

    @given(low=reputations, high=reputations)
    def test_offset_monotone_in_reputation(self, low, high):
        if low > high:
            low, high = high, low
        differentiator = _differentiator()
        assert (differentiator.queue_offset(low)
                <= differentiator.queue_offset(high) + 1e-12)

    @given(requests=st.lists(
        st.tuples(st.text(min_size=1, max_size=4), arrivals, reputations),
        min_size=1, max_size=12))
    def test_order_queue_is_a_permutation(self, requests):
        differentiator = _differentiator()
        ordered = differentiator.order_queue(requests)
        assert sorted(name for name, _ in ordered) == \
            sorted(name for name, _, _ in requests)

    @given(requests=st.lists(
        st.tuples(st.text(min_size=1, max_size=4), arrivals, reputations),
        min_size=2, max_size=12))
    def test_order_queue_sorted_by_effective_time(self, requests):
        differentiator = _differentiator()
        ordered = differentiator.order_queue(requests)
        times = [effective for _, effective in ordered]
        assert times == sorted(times)

    @given(requests=st.lists(
        st.tuples(st.text(min_size=1, max_size=4), arrivals),
        min_size=1, max_size=12, unique_by=lambda request: request[0]))
    def test_equal_reputation_preserves_fifo(self, requests):
        differentiator = _differentiator()
        annotated = [(name, arrival, 0.5) for name, arrival in requests]
        ordered = differentiator.order_queue(annotated)
        effective = {name: time for name, time in ordered}
        for name, arrival, _ in annotated:
            # Same offset for everyone: relative order is arrival order.
            assert effective[name] == pytest.approx(
                arrival - differentiator.queue_offset(0.5))


class TestCreditProperties:
    @given(actions=st.lists(st.sampled_from(list(IncentiveAction)),
                            max_size=40))
    def test_credit_is_sum_of_action_credits(self, actions):
        config = ReputationConfig()
        tracker = ActionCreditTracker(config=config)
        expected = 0.0
        per_action = {
            IncentiveAction.UPLOAD_REAL_FILE: config.upload_credit,
            IncentiveAction.VOTE: config.vote_credit,
            IncentiveAction.RANK_USER: config.rank_credit,
            IncentiveAction.DELETE_FAKE_FILE: config.delete_fake_credit,
        }
        for action in actions:
            tracker.record("u", action)
            expected += per_action[action]
        assert tracker.credit("u") == pytest.approx(expected)

    @given(actions=st.lists(st.sampled_from(list(IncentiveAction)),
                            max_size=40))
    def test_credit_never_decreases(self, actions):
        tracker = ActionCreditTracker()
        balance = 0.0
        for action in actions:
            new_balance = tracker.record("u", action)
            assert new_balance >= balance
            balance = new_balance

    @given(actions=st.lists(st.sampled_from(list(IncentiveAction)),
                            max_size=30))
    def test_counts_partition_actions(self, actions):
        tracker = ActionCreditTracker()
        for action in actions:
            tracker.record("u", action)
        total = sum(tracker.action_count("u", action)
                    for action in IncentiveAction)
        assert total == len(actions)

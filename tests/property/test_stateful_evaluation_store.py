"""Stateful property test: EvaluationStore vs. a naive model.

Hypothesis drives random sequences of record/remove/prune operations
against both the real store and a dictionary-based model; every invariant
the trust dimensions rely on is checked after each step.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (RuleBasedStateMachine, invariant, rule)

from repro.core import EvaluationStore

USERS = ["u0", "u1", "u2", "u3"]
FILES = ["f0", "f1", "f2", "f3", "f4"]


class EvaluationStoreMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.store = EvaluationStore()
        # model: (user, file) -> timestamp
        self.model = {}

    @rule(user=st.sampled_from(USERS), file=st.sampled_from(FILES),
          vote=st.floats(min_value=0, max_value=1),
          timestamp=st.floats(min_value=0, max_value=1000))
    def record_vote(self, user, file, vote, timestamp):
        self.store.record_vote(user, file, vote, timestamp)
        previous = self.model.get((user, file), -1.0)
        self.model[(user, file)] = max(previous, timestamp)

    @rule(user=st.sampled_from(USERS), file=st.sampled_from(FILES),
          retention=st.floats(min_value=0, max_value=1e7),
          timestamp=st.floats(min_value=0, max_value=1000))
    def record_retention(self, user, file, retention, timestamp):
        self.store.record_retention(user, file, retention, timestamp)
        previous = self.model.get((user, file), -1.0)
        self.model[(user, file)] = max(previous, timestamp)

    @rule(user=st.sampled_from(USERS), file=st.sampled_from(FILES),
          play=st.floats(min_value=0, max_value=1),
          timestamp=st.floats(min_value=0, max_value=1000))
    def record_play(self, user, file, play, timestamp):
        self.store.record_play(user, file, play, timestamp)
        previous = self.model.get((user, file), -1.0)
        self.model[(user, file)] = max(previous, timestamp)

    @rule(user=st.sampled_from(USERS), file=st.sampled_from(FILES))
    def remove(self, user, file):
        self.store.remove(user, file)
        self.model.pop((user, file), None)

    @rule(cutoff=st.floats(min_value=0, max_value=1000))
    def prune(self, cutoff):
        removed = self.store.prune_older_than(cutoff)
        stale = [key for key, timestamp in self.model.items()
                 if timestamp < cutoff]
        assert removed == len(stale)
        for key in stale:
            del self.model[key]

    @invariant()
    def same_population(self):
        assert len(self.store) == len(self.model)
        for (user, file) in self.model:
            assert self.store.get(user, file) is not None

    @invariant()
    def indexes_agree(self):
        for (user, file) in self.model:
            assert file in self.store.files_evaluated_by(user)
            assert user in self.store.users_evaluating(file)

    @invariant()
    def values_in_unit_interval(self):
        for evaluation in self.store:
            assert 0.0 <= evaluation.value() <= 1.0

    @invariant()
    def shared_files_symmetric(self):
        for a in USERS[:2]:
            for b in USERS[2:]:
                assert (self.store.shared_files(a, b)
                        == self.store.shared_files(b, a))


TestEvaluationStoreStateful = EvaluationStoreMachine.TestCase
TestEvaluationStoreStateful.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None)

"""Property tests: incremental pipeline == full rebuild, exactly.

The pipeline's hard bar is that consuming deltas incrementally produces
matrices **bit-identical** (``TrustMatrix.__eq__``, no tolerance) to
rebuilding from the stores from scratch.  Hypothesis drives random
interleavings of every mutating event the façade accepts — votes,
retentions, downloads, ranks, friendships, blacklistings, prunes — with
refreshes scattered between them, then compares every stage (FM, DM, UM,
TM, RM) against the independent full builders.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (MultiDimensionalReputationSystem, ReputationConfig,
                        TrustMatrix, build_file_trust_matrix,
                        build_one_step_matrix, build_user_trust_matrix,
                        build_volume_trust_matrix, compute_reputation_matrix,
                        resolve_backend)

USERS = ["u0", "u1", "u2", "u3"]
FILES = ["f0", "f1", "f2", "f3", "f4", "f5"]

user_ids = st.sampled_from(USERS)
file_ids = st.sampled_from(FILES)
values = st.floats(min_value=0.0, max_value=1.0)

events = st.one_of(
    st.tuples(st.just("vote"), user_ids, file_ids, values),
    st.tuples(st.just("retention"), user_ids, file_ids,
              st.floats(min_value=0.0, max_value=1e5)),
    st.tuples(st.just("download"), user_ids, user_ids, file_ids,
              st.floats(min_value=1.0, max_value=1e7)),
    st.tuples(st.just("rank"), user_ids, user_ids, values),
    st.tuples(st.just("friend"), user_ids, user_ids),
    st.tuples(st.just("blacklist"), user_ids, user_ids),
    st.tuples(st.just("prune"), st.integers(min_value=0, max_value=60)),
    st.tuples(st.just("refresh")),
)


def _apply(system: MultiDimensionalReputationSystem, event, clock: float
           ) -> None:
    kind = event[0]
    if kind == "vote":
        system.record_vote(event[1], event[2], event[3], timestamp=clock)
    elif kind == "retention":
        system.record_retention(event[1], event[2], event[3],
                                timestamp=clock)
    elif kind == "download":
        if event[1] != event[2]:
            system.record_download(event[1], event[2], event[3], event[4],
                                   timestamp=clock)
    elif kind == "rank":
        if event[1] != event[2]:
            system.record_rank(event[1], event[2], event[3])
    elif kind == "friend":
        if event[1] != event[2]:
            system.add_friend(event[1], event[2])
    elif kind == "blacklist":
        if event[1] != event[2]:
            system.add_to_blacklist(event[1], event[2])
    elif kind == "prune":
        system.prune_before(clock - float(event[1]))
    elif kind == "refresh":
        system.recompute()
        system.refresh_view()


def _assert_all_stages_match(system: MultiDimensionalReputationSystem
                             ) -> None:
    """Exact equality of every pipeline stage against the full builders.

    Uses the shared :meth:`dimension_matrices` accessor, so the same bar
    applies verbatim to the monolithic and the sharded pipeline (whose
    accessor merges shard fragments).
    """
    config = system.config
    pipeline = system.pipeline
    dimensions = pipeline.dimension_matrices()
    assert dimensions["file"] == build_file_trust_matrix(
        system.evaluations, config)
    assert dimensions["volume"] == build_volume_trust_matrix(
        system.ledger, system.evaluations, config)
    assert dimensions["user"] == build_user_trust_matrix(
        system.user_trust)
    full_trust = build_one_step_matrix(
        system.evaluations, system.ledger, system.user_trust, config)
    assert pipeline.trust == full_trust
    assert pipeline.reputation == compute_reputation_matrix(
        full_trust, None, config,
        backend=resolve_backend(config.matmul_backend, full_trust))


class TestIncrementalEqualsFull:
    @settings(max_examples=60, deadline=None)
    @given(interleaving=st.lists(events, min_size=1, max_size=40))
    def test_random_interleavings(self, interleaving):
        system = MultiDimensionalReputationSystem(auto_refresh=False)
        for index, event in enumerate(interleaving):
            _apply(system, event, clock=float(index))
        system.recompute()
        system.refresh_view()
        _assert_all_stages_match(system)

    @settings(max_examples=25, deadline=None)
    @given(interleaving=st.lists(events, min_size=2, max_size=30),
           steps=st.integers(min_value=1, max_value=3))
    def test_interleavings_with_multitrust_steps(self, interleaving, steps):
        config = ReputationConfig(multitrust_steps=steps)
        system = MultiDimensionalReputationSystem(config,
                                                  auto_refresh=False)
        for index, event in enumerate(interleaving):
            _apply(system, event, clock=float(index))
            if index % 7 == 3:
                system.recompute()
                system.refresh_view()
        system.recompute()
        system.refresh_view()
        _assert_all_stages_match(system)

    @settings(max_examples=25, deadline=None)
    @given(interleaving=st.lists(events, min_size=1, max_size=25))
    def test_single_dimension_configs(self, interleaving):
        for weights in [(1.0, 0.0, 0.0), (0.0, 1.0, 0.0), (0.0, 0.0, 1.0)]:
            alpha, beta, gamma = weights
            config = ReputationConfig(alpha=alpha, beta=beta, gamma=gamma)
            system = MultiDimensionalReputationSystem(config,
                                                      auto_refresh=False)
            for index, event in enumerate(interleaving):
                _apply(system, event, clock=float(index))
            system.recompute()
            system.refresh_view()
            assert system.pipeline.trust == build_one_step_matrix(
                system.evaluations, system.ledger, system.user_trust,
                config)


class TestBackendEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(interleaving=st.lists(events, min_size=3, max_size=30),
           steps=st.integers(min_value=2, max_value=4))
    def test_sparse_and_dense_reputations_agree(self, interleaving, steps):
        systems = {}
        for spec in ("sparse", "dense"):
            config = ReputationConfig(multitrust_steps=steps,
                                      matmul_backend=spec)
            system = MultiDimensionalReputationSystem(config,
                                                      auto_refresh=False)
            for index, event in enumerate(interleaving):
                _apply(system, event, clock=float(index))
            system.recompute()
            system.refresh_view()
            systems[spec] = system
        sparse = systems["sparse"].pipeline.reputation
        dense = systems["dense"].pipeline.reputation
        ids = sorted(set(sparse.node_ids()) | set(dense.node_ids()))
        for i in ids:
            for j in ids:
                assert dense.get(i, j) == pytest.approx(
                    sparse.get(i, j), abs=1e-12)

    @settings(max_examples=20, deadline=None)
    @given(interleaving=st.lists(events, min_size=3, max_size=30))
    def test_backend_choice_never_changes_tm(self, interleaving):
        matrices = []
        for spec in ("sparse", "dense", "auto"):
            config = ReputationConfig(matmul_backend=spec)
            system = MultiDimensionalReputationSystem(config,
                                                      auto_refresh=False)
            for index, event in enumerate(interleaving):
                _apply(system, event, clock=float(index))
            system.recompute()
            system.refresh_view()
            matrices.append(system.pipeline.trust)
        assert matrices[0] == matrices[1] == matrices[2]
        assert isinstance(matrices[0], TrustMatrix)


class TestShardedEqualsMonolithic:
    """The sharded pipeline is the monolithic one, bit for bit.

    Same interleavings, same bar: every shard count must publish matrices
    whose checksums equal the unsharded pipeline's, and every stage must
    still match the full builders (the sharded pipeline merges per-shard
    fragments inside :meth:`dimension_matrices`).
    """

    @settings(max_examples=30, deadline=None)
    @given(interleaving=st.lists(events, min_size=1, max_size=35))
    def test_every_shard_count_matches_monolith(self, interleaving):
        checksums = []
        for shards in (1, 2, 4):
            config = ReputationConfig(shards=shards)
            system = MultiDimensionalReputationSystem(config,
                                                      auto_refresh=False)
            for index, event in enumerate(interleaving):
                _apply(system, event, clock=float(index))
            system.recompute()
            system.refresh_view()
            _assert_all_stages_match(system)
            checksums.append(system.pipeline.checksums())
        monolith = MultiDimensionalReputationSystem(auto_refresh=False)
        for index, event in enumerate(interleaving):
            _apply(monolith, event, clock=float(index))
        monolith.recompute()
        monolith.refresh_view()
        assert all(c == monolith.pipeline.checksums() for c in checksums)

    @settings(max_examples=15, deadline=None)
    @given(interleaving=st.lists(events, min_size=2, max_size=30),
           steps=st.integers(min_value=1, max_value=3))
    def test_sharded_multitrust_interleavings(self, interleaving, steps):
        config = ReputationConfig(shards=3, multitrust_steps=steps)
        system = MultiDimensionalReputationSystem(config, auto_refresh=False)
        for index, event in enumerate(interleaving):
            _apply(system, event, clock=float(index))
            if index % 7 == 3:
                system.recompute()
                system.refresh_view()
        system.recompute()
        system.refresh_view()
        _assert_all_stages_match(system)

    def test_worker_pool_matches_serial_sharded(self):
        """shards=4, workers=2 replays an interleaving bit-identically."""
        interleaving = []
        for i in range(40):
            user = USERS[i % len(USERS)]
            peer = USERS[(i + 1) % len(USERS)]
            file_id = FILES[i % len(FILES)]
            interleaving.extend([
                ("vote", user, file_id, (i % 10) / 10.0),
                ("download", user, peer, file_id, 1e4 + i),
                ("rank", user, peer, (i % 7) / 7.0),
            ])
        checksums = {}
        for workers in (1, 2):
            config = ReputationConfig(shards=4, shard_workers=workers)
            system = MultiDimensionalReputationSystem(config,
                                                      auto_refresh=False)
            try:
                for index, event in enumerate(interleaving):
                    _apply(system, event, clock=float(index))
                    if index % 17 == 5:
                        system.recompute()
                        system.refresh_view()
                system.recompute()
                system.refresh_view()
                checksums[workers] = system.pipeline.checksums()
            finally:
                system.close()
        assert checksums[1] == checksums[2]

"""Property tests for NodeStorage TTL boundary semantics.

The contract under test:

* expiry is *inclusive* at the boundary — a record whose ``expires_at``
  equals ``now`` is already expired (``get`` must not return it);
* strictly before the boundary the record is alive;
* republication (``put`` again) refreshes ``stored_at`` and therefore the
  expiry horizon;
* ``put_record`` (repair/hand-off adoption) preserves freshness and never
  replaces a fresher record with a staler one.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dht.storage import NodeStorage, StoredRecord

_times = st.floats(min_value=0.0, max_value=1e9, allow_nan=False,
                   allow_infinity=False)
_ttls = st.floats(min_value=1e-6, max_value=1e8, allow_nan=False,
                  allow_infinity=False)


@given(stored_at=_times, ttl=_ttls)
def test_expiry_boundary_is_inclusive(stored_at, ttl):
    storage = NodeStorage()
    record = storage.put(1, "owner", "value", now=stored_at, ttl=ttl)
    boundary = record.expires_at()
    assert record.expired(boundary)
    assert storage.get(1, boundary) == []


@given(stored_at=_times, ttl=_ttls)
def test_alive_strictly_before_boundary(stored_at, ttl):
    storage = NodeStorage()
    record = storage.put(1, "owner", "value", now=stored_at, ttl=ttl)
    boundary = record.expires_at()
    just_before = boundary - min(ttl / 2, 1e-3)
    if just_before >= boundary:  # float underflow: boundary == stored_at + 0
        return
    assert not record.expired(just_before)
    assert storage.get(1, just_before) != []


@given(stored_at=_times, ttl=_ttls,
       refresh_delta=st.floats(min_value=0.0, max_value=1e6,
                               allow_nan=False, allow_infinity=False))
def test_republication_refreshes_stored_at(stored_at, ttl, refresh_delta):
    storage = NodeStorage()
    storage.put(1, "owner", "v1", now=stored_at, ttl=ttl)
    refreshed = storage.put(1, "owner", "v2", now=stored_at + refresh_delta,
                            ttl=ttl)
    assert refreshed.stored_at == stored_at + refresh_delta
    assert refreshed.expires_at() == stored_at + refresh_delta + ttl
    # The refreshed record is the only one served for this (key, owner).
    live = storage.get_owner(1, "owner", now=stored_at + refresh_delta)
    assert live is not None and live.value == "v2"


@given(stored_at=_times, ttl=_ttls, gap=st.floats(min_value=1e-3,
                                                  max_value=1e6,
                                                  allow_nan=False,
                                                  allow_infinity=False))
@settings(max_examples=50)
def test_put_record_never_downgrades_freshness(stored_at, ttl, gap):
    storage = NodeStorage()
    fresh = StoredRecord(key=1, owner_id="owner", value="fresh",
                         stored_at=stored_at + gap, ttl=ttl)
    stale = StoredRecord(key=1, owner_id="owner", value="stale",
                         stored_at=stored_at, ttl=ttl)
    storage.put_record(fresh)
    kept = storage.put_record(stale)
    assert kept.value == "fresh"
    assert kept.stored_at == stored_at + gap


@given(stored_at=_times, ttl=_ttls)
def test_put_record_preserves_metadata(stored_at, ttl):
    storage = NodeStorage()
    original = StoredRecord(key=7, owner_id="owner", value="value",
                            stored_at=stored_at, ttl=ttl)
    adopted = storage.put_record(original)
    assert adopted is not original  # a copy, not shared mutable state
    assert adopted.stored_at == original.stored_at
    assert adopted.ttl == original.ttl
    assert adopted.expires_at() == original.expires_at()

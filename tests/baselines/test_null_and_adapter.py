"""Tests for the null mechanism, the adapter and the mechanism registry."""

import pytest

from repro.baselines import (ALL_MECHANISMS, MultiDimensionalMechanism,
                             NullMechanism, ReputationMechanism)
from repro.core import ReputationConfig

PURE_EXPLICIT = ReputationConfig(eta=0.0, rho=1.0)


class TestNull:
    def test_trusts_nobody_and_nothing(self):
        mechanism = NullMechanism()
        mechanism.record_download("a", "b", "f", 1.0)
        mechanism.record_vote("a", "f", 1.0)
        assert mechanism.reputation("a", "b") == 0.0
        assert mechanism.file_score("a", "f") is None


class TestRegistry:
    def test_all_mechanisms_constructible(self):
        for name, factory in ALL_MECHANISMS.items():
            mechanism = factory()
            assert isinstance(mechanism, ReputationMechanism)
            assert mechanism.name == name

    def test_registry_covers_paper_and_baselines(self):
        assert set(ALL_MECHANISMS) == {
            "null", "tit-for-tat", "eigentrust", "multitrust-lian",
            "lip", "credence", "multidimensional"}

    def test_common_interface_signals_are_safe_everywhere(self):
        """Every mechanism must accept every signal without blowing up."""
        for factory in ALL_MECHANISMS.values():
            mechanism = factory()
            mechanism.record_download("a", "b", "f", 100.0, timestamp=1.0)
            mechanism.record_vote("a", "f", 0.9, timestamp=2.0)
            mechanism.record_retention("a", "f", 3600.0, timestamp=3.0)
            mechanism.record_rank("a", "b", 0.8)
            mechanism.record_deletion("a", "f", timestamp=4.0)
            mechanism.record_upload_outcome("b", positive=True)
            mechanism.refresh()
            mechanism.reputation("a", "b")
            mechanism.file_score("a", "f")
            mechanism.global_scores()


class TestMultiDimensionalAdapter:
    def test_signals_reach_the_facade(self):
        adapter = MultiDimensionalMechanism(PURE_EXPLICIT)
        adapter.record_vote("a", "f1", 0.9)
        adapter.record_vote("b", "f1", 0.9)
        adapter.refresh()
        assert adapter.reputation("a", "b") > 0.0

    def test_file_score_is_eq9(self):
        adapter = MultiDimensionalMechanism(PURE_EXPLICIT)
        adapter.record_vote("a", "shared", 0.9)
        adapter.record_vote("b", "shared", 0.9)
        adapter.record_vote("b", "target", 0.8)
        adapter.refresh()
        assert adapter.file_score("a", "target") == pytest.approx(0.8)

    def test_unknown_file_score_is_none(self):
        adapter = MultiDimensionalMechanism(PURE_EXPLICIT)
        assert adapter.file_score("a", "mystery") is None

    def test_manual_refresh_by_default(self):
        adapter = MultiDimensionalMechanism(PURE_EXPLICIT)
        adapter.record_vote("a", "f1", 0.9)
        adapter.record_vote("b", "f1", 0.9)
        assert adapter.system.user_reputation("a", "b") > 0.0  # lazily built
        adapter.record_vote("c", "f1", 0.9)  # does not invalidate the cache
        assert adapter.system.user_reputation("a", "c") == 0.0
        adapter.refresh()
        assert adapter.system.user_reputation("a", "c") > 0.0

    def test_positive_upload_outcome_earns_credit(self):
        adapter = MultiDimensionalMechanism(PURE_EXPLICIT)
        adapter.record_upload_outcome("uploader", positive=True)
        assert adapter.system.credits.credit("uploader") > 0.0

    def test_negative_upload_outcome_earns_nothing(self):
        adapter = MultiDimensionalMechanism(PURE_EXPLICIT)
        adapter.record_upload_outcome("uploader", positive=False)
        assert adapter.system.credits.credit("uploader") == 0.0

    def test_deletion_maps_to_fake_deletion(self):
        adapter = MultiDimensionalMechanism(PURE_EXPLICIT)
        adapter.record_deletion("a", "fake")
        assert adapter.system.credits.credit("a") > 0.0

    def test_global_scores_projection(self):
        adapter = MultiDimensionalMechanism(PURE_EXPLICIT)
        adapter.record_vote("a", "f1", 0.9)
        adapter.record_vote("b", "f1", 0.9)
        adapter.refresh()
        scores = adapter.global_scores()
        assert scores and all(v >= 0 for v in scores.values())

"""Tests for the Lian multi-trust, LIP and Credence baselines."""

import pytest

from repro.baselines import (CredenceMechanism, LianMultiTrustMechanism,
                             LIPMechanism)

DAY = 24 * 3600.0


class TestLianMultiTrust:
    def test_tier_one_for_direct_uploader(self):
        mechanism = LianMultiTrustMechanism(max_tier=3)
        mechanism.record_download("a", "b", "f1", 100.0)
        assert mechanism.assign_tier("a", "b").tier == 1

    def test_tier_two_for_friend_of_friend(self):
        mechanism = LianMultiTrustMechanism(max_tier=3)
        mechanism.record_download("a", "b", "f1", 100.0)
        mechanism.record_download("b", "c", "f2", 100.0)
        assert mechanism.assign_tier("a", "c").tier == 2

    def test_unreachable_scores_zero(self):
        mechanism = LianMultiTrustMechanism(max_tier=2)
        mechanism.record_download("a", "b", "f1", 100.0)
        assert mechanism.reputation("a", "z") == 0.0

    def test_lower_tier_always_outranks_deeper(self):
        mechanism = LianMultiTrustMechanism(max_tier=3)
        mechanism.record_download("a", "direct", "f1", 1.0)  # tiny volume
        mechanism.record_download("a", "hub", "f2", 1000.0)
        mechanism.record_download("hub", "fof", "f3", 1000.0)
        assert (mechanism.reputation("a", "direct")
                > mechanism.reputation("a", "fof"))

    def test_within_tier_ranked_by_volume(self):
        mechanism = LianMultiTrustMechanism()
        mechanism.record_download("a", "big", "f1", 900.0)
        mechanism.record_download("a", "small", "f2", 100.0)
        assert (mechanism.reputation("a", "big")
                > mechanism.reputation("a", "small"))

    def test_single_dimension_matrix_is_volume_only(self):
        """The C5 premise: Lian's one-step matrix is download traffic only."""
        mechanism = LianMultiTrustMechanism()
        mechanism.record_download("a", "b", "f1", 100.0)
        matrix = mechanism.one_step_matrix()
        assert matrix.get("a", "b") == pytest.approx(1.0)
        assert matrix.entry_count() == 1

    def test_invalid_max_tier(self):
        with pytest.raises(ValueError):
            LianMultiTrustMechanism(max_tier=0)


class TestLIP:
    def test_unknown_file_has_no_score(self):
        assert LIPMechanism().file_score("me", "mystery") is None

    def test_long_lived_popular_file_scores_high(self):
        mechanism = LIPMechanism()
        for day in range(20):
            mechanism.record_download(f"d{day}", "seed", "real-file",
                                      100.0, timestamp=day * DAY)
        score = mechanism.file_score("me", "real-file")
        assert score is not None and score > 0.6

    def test_heavily_deleted_file_scores_low(self):
        mechanism = LIPMechanism()
        for index in range(10):
            mechanism.record_download(f"d{index}", "seed", "fake-file",
                                      100.0, timestamp=float(index))
            mechanism.record_deletion(f"d{index}", "fake-file",
                                      timestamp=float(index) + 1)
        score = mechanism.file_score("me", "fake-file")
        assert score is not None and score < 0.2

    def test_small_owner_count_weakness(self):
        """The paper's critique: LIP 'cannot identify the quality of a file
        accurately when its number of owners is too small'. A brand-new real
        file with one owner scores no better than a new fake."""
        mechanism = LIPMechanism()
        mechanism.record_download("d0", "seed", "new-real", 10.0, timestamp=0.0)
        mechanism.record_download("d1", "seed", "new-fake", 10.0, timestamp=0.0)
        real_score = mechanism.file_score("me", "new-real")
        fake_score = mechanism.file_score("me", "new-fake")
        assert real_score == pytest.approx(fake_score)

    def test_no_user_reputation(self):
        assert LIPMechanism().reputation("a", "b") == 0.0

    def test_owner_count(self):
        mechanism = LIPMechanism()
        mechanism.record_download("a", "b", "f", 1.0)
        assert mechanism.owner_count("f") == 2
        mechanism.record_deletion("a", "f")
        assert mechanism.owner_count("f") == 1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LIPMechanism(half_owners=0)
        with pytest.raises(ValueError):
            LIPMechanism(lifetime_scale_seconds=0.0)


class TestCredence:
    def _agreeing_pair(self, mechanism, a="a", b="b", n=4):
        for index in range(n):
            vote = 1.0 if index % 2 == 0 else 0.0
            mechanism.record_vote(a, f"f{index}", vote)
            mechanism.record_vote(b, f"f{index}", vote)

    def test_agreeing_voters_have_positive_correlation(self):
        mechanism = CredenceMechanism()
        self._agreeing_pair(mechanism)
        assert mechanism.correlation("a", "b") == pytest.approx(1.0)

    def test_opposed_voters_have_negative_correlation(self):
        mechanism = CredenceMechanism()
        for index in range(4):
            vote = 1.0 if index % 2 == 0 else 0.0
            mechanism.record_vote("a", f"f{index}", vote)
            mechanism.record_vote("b", f"f{index}", 1.0 - vote)
        assert mechanism.correlation("a", "b") == pytest.approx(-1.0)

    def test_insufficient_overlap_gives_none(self):
        mechanism = CredenceMechanism(min_overlap=2)
        mechanism.record_vote("a", "f0", 1.0)
        mechanism.record_vote("b", "f0", 1.0)
        assert mechanism.correlation("a", "b") is None

    def test_negative_correlation_clamped_in_reputation(self):
        mechanism = CredenceMechanism()
        for index in range(4):
            vote = 1.0 if index % 2 == 0 else 0.0
            mechanism.record_vote("a", f"f{index}", vote)
            mechanism.record_vote("b", f"f{index}", 1.0 - vote)
        assert mechanism.reputation("a", "b") == 0.0

    def test_degenerate_all_same_votes_count_as_agreement(self):
        mechanism = CredenceMechanism()
        for index in range(3):
            mechanism.record_vote("a", f"f{index}", 1.0)
            mechanism.record_vote("b", f"f{index}", 1.0)
        assert mechanism.correlation("a", "b") == pytest.approx(1.0)

    def test_file_score_weighted_by_correlation(self):
        mechanism = CredenceMechanism()
        self._agreeing_pair(mechanism, "me", "friend")
        mechanism.record_vote("friend", "new-file", 1.0)
        mechanism.record_vote("stranger", "new-file", 0.0)
        score = mechanism.file_score("me", "new-file")
        assert score == pytest.approx(1.0)  # stranger carries no weight

    def test_file_score_none_without_correlated_voters(self):
        mechanism = CredenceMechanism()
        mechanism.record_vote("stranger", "f", 1.0)
        assert mechanism.file_score("me", "f") is None

    def test_vote_count(self):
        mechanism = CredenceMechanism()
        mechanism.record_vote("a", "f1", 1.0)
        mechanism.record_vote("a", "f2", 0.0)
        assert mechanism.vote_count("a") == 2

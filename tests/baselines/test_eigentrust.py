"""Tests for the EigenTrust baseline."""

import pytest

from repro.baselines import EigenTrustMechanism


def _transaction(mechanism, downloader, uploader, file_id, vote):
    mechanism.record_download(downloader, uploader, file_id, 100.0)
    mechanism.record_vote(downloader, file_id, vote)


class TestBasics:
    def test_scores_form_distribution(self):
        mechanism = EigenTrustMechanism()
        _transaction(mechanism, "a", "b", "f1", 1.0)
        _transaction(mechanism, "b", "c", "f2", 1.0)
        scores = mechanism.global_scores()
        assert sum(scores.values()) == pytest.approx(1.0)
        assert all(score >= 0 for score in scores.values())

    def test_good_uploader_outranks_unknown(self):
        mechanism = EigenTrustMechanism()
        for index in range(5):
            _transaction(mechanism, f"d{index}", "good", f"f{index}", 1.0)
        scores = mechanism.global_scores()
        assert scores["good"] == max(scores.values())

    def test_unsatisfactory_transactions_cancel_positive(self):
        mechanism = EigenTrustMechanism()
        _transaction(mechanism, "a", "bad", "f1", 1.0)
        _transaction(mechanism, "a", "bad", "f2", 0.0)
        _transaction(mechanism, "a", "good", "f3", 1.0)
        scores = mechanism.global_scores()
        assert scores["good"] > scores["bad"]

    def test_observer_independent(self):
        mechanism = EigenTrustMechanism()
        _transaction(mechanism, "a", "b", "f1", 1.0)
        assert mechanism.reputation("a", "b") == mechanism.reputation("z", "b")

    def test_empty_network(self):
        mechanism = EigenTrustMechanism()
        mechanism.refresh()
        assert mechanism.global_scores() == {}
        assert mechanism.reputation("a", "b") == 0.0

    def test_votes_without_pending_download_ignored(self):
        mechanism = EigenTrustMechanism()
        mechanism.record_vote("a", "f1", 1.0)
        mechanism.refresh()
        assert mechanism.global_scores() == {}

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            EigenTrustMechanism(damping=1.5)
        with pytest.raises(ValueError):
            EigenTrustMechanism(max_iterations=0)


class TestPreTrusted:
    def test_pre_trusted_peers_anchor_scores(self):
        mechanism = EigenTrustMechanism(pre_trusted=["anchor"])
        _transaction(mechanism, "anchor", "b", "f1", 1.0)
        _transaction(mechanism, "x", "y", "f2", 1.0)
        scores = mechanism.global_scores()
        # b is endorsed by the pre-trusted anchor; y only by a nobody.
        assert scores["b"] > scores["y"]

    def test_set_pre_trusted_invalidates(self):
        mechanism = EigenTrustMechanism()
        _transaction(mechanism, "a", "b", "f1", 1.0)
        before = mechanism.global_scores()
        mechanism.set_pre_trusted(["b"])
        after = mechanism.global_scores()
        assert after["b"] > before["b"]

    def test_converges_quickly(self):
        mechanism = EigenTrustMechanism()
        for index in range(10):
            _transaction(mechanism, f"d{index}", f"u{index % 3}",
                         f"f{index}", 1.0)
        mechanism.refresh()
        assert mechanism.iterations_used < 100


class TestPaperCritique:
    """Section 2: EigenTrust 'suffers from both false negatives and false
    positives' — reproduced mechanically here, measured in benchmark C2."""

    def test_false_negative_newcomer_indistinguishable_from_nobody(self):
        """An honest newcomer with a flawless (but small) record scores
        barely above peers with no service record at all."""
        mechanism = EigenTrustMechanism(damping=0.1)
        for index in range(20):
            _transaction(mechanism, f"d{index % 4}", "hub", f"h{index}", 1.0)
        _transaction(mechanism, "d0", "newcomer", "n1", 1.0)
        scores = mechanism.global_scores()
        # d1 never uploaded anything; the newcomer served perfectly once.
        assert scores["newcomer"] < scores["d1"] * 1.3
        assert scores["newcomer"] < scores["hub"] / 3

    def test_false_positive_collusion_sink_inflates_scores(self):
        """Colluders who trust only each other while honest peers get duped
        into trusting them form a random-walk sink and outrank everyone."""
        mechanism = EigenTrustMechanism(damping=0.1)
        # Honest community: mutual positive transactions.
        for index in range(6):
            _transaction(mechanism, f"h{index % 3}", f"h{(index + 1) % 3}",
                         f"hf{index}", 1.0)
        # Each honest peer was duped once into a good transaction with c0.
        for index in range(3):
            _transaction(mechanism, f"h{index}", "c0", f"bait{index}", 1.0)
        # The clique's fabricated internal trust keeps the mass inside.
        for index in range(12):
            _transaction(mechanism, f"c{index % 3}", f"c{(index + 1) % 3}",
                         f"cf{index}", 1.0)
        scores = mechanism.global_scores()
        best_colluder = max(scores[f"c{i}"] for i in range(3))
        best_honest = max(scores[f"h{i}"] for i in range(3))
        assert best_colluder > best_honest


class TestLazyRefresh:
    def test_auto_refresh_false_returns_stale_scores(self):
        mechanism = EigenTrustMechanism(auto_refresh=False)
        _transaction(mechanism, "a", "b", "f1", 1.0)
        assert mechanism.reputation("a", "b") == 0.0  # never refreshed
        mechanism.refresh()
        assert mechanism.reputation("a", "b") > 0.0

"""Tests for the Tit-for-Tat baseline."""

import pytest

from repro.baselines import TitForTatMechanism

DAY = 24 * 3600.0


class TestPrivateHistory:
    def test_trust_equals_bytes_received(self):
        mechanism = TitForTatMechanism()
        mechanism.record_download("a", "b", "f1", 100.0)
        mechanism.record_download("a", "b", "f2", 50.0)
        assert mechanism.reputation("a", "b") == pytest.approx(150.0)

    def test_trust_is_directional(self):
        mechanism = TitForTatMechanism()
        mechanism.record_download("a", "b", "f1", 100.0)
        assert mechanism.reputation("a", "b") > 0
        assert mechanism.reputation("b", "a") == 0.0

    def test_trust_is_private(self):
        """c learns nothing from a's downloads — the coverage problem."""
        mechanism = TitForTatMechanism()
        mechanism.record_download("a", "b", "f1", 100.0)
        assert mechanism.reputation("c", "b") == 0.0

    def test_has_history(self):
        mechanism = TitForTatMechanism()
        assert not mechanism.has_history("a", "b")
        mechanism.record_download("a", "b", "f1", 1.0)
        assert mechanism.has_history("a", "b")

    def test_no_file_scores(self):
        assert TitForTatMechanism().file_score("a", "f") is None

    def test_no_global_scores(self):
        assert TitForTatMechanism().global_scores() == {}


class TestHistoryWindow:
    def test_old_history_expires_on_refresh(self):
        mechanism = TitForTatMechanism(history_window_seconds=30 * DAY)
        mechanism.record_download("a", "b", "f1", 100.0, timestamp=0.0)
        mechanism.record_download("a", "b", "f2", 50.0, timestamp=35 * DAY)
        mechanism.refresh()
        # The day-0 download fell outside the 30-day window ending at day 35.
        assert mechanism.reputation("a", "b") == pytest.approx(50.0)

    def test_recent_history_survives_refresh(self):
        mechanism = TitForTatMechanism(history_window_seconds=30 * DAY)
        mechanism.record_download("a", "b", "f1", 100.0, timestamp=10 * DAY)
        mechanism.record_download("a", "c", "f2", 10.0, timestamp=20 * DAY)
        mechanism.refresh()
        assert mechanism.reputation("a", "b") == pytest.approx(100.0)

    def test_unwindowed_history_never_expires(self):
        mechanism = TitForTatMechanism()
        mechanism.record_download("a", "b", "f1", 100.0, timestamp=0.0)
        mechanism.record_download("a", "b", "f2", 1.0, timestamp=365 * DAY)
        mechanism.refresh()
        assert mechanism.reputation("a", "b") == pytest.approx(101.0)

    def test_fully_expired_pair_removed(self):
        mechanism = TitForTatMechanism(history_window_seconds=DAY)
        mechanism.record_download("a", "b", "f1", 100.0, timestamp=0.0)
        mechanism.record_download("a", "c", "f2", 1.0, timestamp=10 * DAY)
        mechanism.refresh()
        assert not mechanism.has_history("a", "b")

"""Tests for repro.simulator.workload and churn."""

import random

import pytest

from repro.simulator import ChurnModel, FileRegistry, WorkloadModel
from repro.traces import FileCatalog


class TestWorkloadModel:
    @pytest.fixture
    def registry(self):
        catalog = FileCatalog.generate(30, random.Random(1))
        registry = FileRegistry(catalog)
        for catalog_file in catalog:
            registry.add_copy("seeder", catalog_file.file_id, now=0.0)
        return registry

    def test_interarrival_positive_and_mean_close(self):
        workload = WorkloadModel(request_rate=0.1, seed=1)
        draws = [workload.next_interarrival() for _ in range(3000)]
        assert all(d > 0 for d in draws)
        assert sum(draws) / len(draws) == pytest.approx(10.0, rel=0.15)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            WorkloadModel(request_rate=0.0)

    def test_pick_request_returns_feasible_pair(self, registry):
        workload = WorkloadModel(seed=2)
        for peer_id in ("a", "b", "c"):
            workload.register_peer(peer_id)
        picked = workload.pick_request(["a", "b", "c"], registry, now=0.0)
        assert picked is not None
        requester, file_id = picked
        assert requester in ("a", "b", "c")
        assert not registry.holds(requester, file_id)

    def test_pick_request_empty_population(self, registry):
        workload = WorkloadModel(seed=2)
        assert workload.pick_request([], registry, now=0.0) is None

    def test_activity_weight_drawn_once(self):
        workload = WorkloadModel(seed=3)
        workload.register_peer("a")
        weight = workload._activity["a"]
        workload.register_peer("a")
        assert workload._activity["a"] == weight

    def test_heavy_requesters_dominate(self, registry):
        workload = WorkloadModel(seed=4, activity_sigma=2.0)
        peers = [f"p{i}" for i in range(20)]
        for peer_id in peers:
            workload.register_peer(peer_id)
        counts = {}
        for _ in range(2000):
            picked = workload.pick_request(peers, registry, now=0.0)
            if picked:
                counts[picked[0]] = counts.get(picked[0], 0) + 1
        top = max(counts.values())
        assert top > 3 * (sum(counts.values()) / len(peers))


class TestChurnModel:
    def test_disabled_flag_survives(self):
        assert not ChurnModel(enabled=False).enabled

    def test_invalid_durations_rejected(self):
        with pytest.raises(ValueError):
            ChurnModel(mean_session_seconds=0.0)
        with pytest.raises(ValueError):
            ChurnModel(mean_offline_seconds=-1.0)
        with pytest.raises(ValueError):
            ChurnModel(mean_offline_seconds=0.0)
        with pytest.raises(ValueError):
            ChurnModel(join_spread_seconds=-1.0)

    def test_join_delay_within_spread(self):
        churn = ChurnModel(join_spread_seconds=100.0, seed=1)
        for _ in range(100):
            assert 0.0 <= churn.initial_join_delay() <= 100.0

    def test_zero_spread_joins_immediately(self):
        churn = ChurnModel(join_spread_seconds=0.0)
        assert churn.initial_join_delay() == 0.0

    def test_session_durations_exponential_mean(self):
        churn = ChurnModel(mean_session_seconds=1000.0, seed=2)
        draws = [churn.session_duration() for _ in range(5000)]
        assert sum(draws) / len(draws) == pytest.approx(1000.0, rel=0.1)

    def test_offline_durations_positive(self):
        churn = ChurnModel(seed=3)
        assert all(churn.offline_duration() > 0 for _ in range(100))

    def test_scaled_divides_both_means(self):
        churn = ChurnModel(mean_session_seconds=4000.0,
                           mean_offline_seconds=8000.0,
                           join_spread_seconds=120.0, seed=9)
        fast = churn.scaled(4.0)
        assert fast.mean_session_seconds == 1000.0
        assert fast.mean_offline_seconds == 2000.0
        assert fast.join_spread_seconds == 120.0  # spread is not a rate
        assert fast.seed == 9
        assert fast.enabled

    def test_scaled_preserves_online_fraction(self):
        churn = ChurnModel(mean_session_seconds=6000.0,
                           mean_offline_seconds=18000.0)
        fast = churn.scaled(3.0)
        before = churn.mean_session_seconds / (
            churn.mean_session_seconds + churn.mean_offline_seconds)
        after = fast.mean_session_seconds / (
            fast.mean_session_seconds + fast.mean_offline_seconds)
        assert after == pytest.approx(before)

    def test_scaled_rejects_non_positive_factor(self):
        churn = ChurnModel()
        with pytest.raises(ValueError):
            churn.scaled(0.0)
        with pytest.raises(ValueError):
            churn.scaled(-2.0)

    def test_scaled_does_not_mutate_original(self):
        churn = ChurnModel(mean_session_seconds=4000.0)
        churn.scaled(2.0)
        assert churn.mean_session_seconds == 4000.0

"""Tests for repro.simulator.files: the file registry."""

import random

import pytest

from repro.simulator import FileRegistry
from repro.traces import FileCatalog


@pytest.fixture
def registry():
    catalog = FileCatalog.generate(20, random.Random(1), fake_ratio=0.5)
    return FileRegistry(catalog)


def _some_real(registry):
    return registry.catalog.real_ids()[0]


def _some_fake(registry):
    return registry.catalog.fake_ids()[0]


class TestHoldings:
    def test_add_copy_registers_holder(self, registry):
        file_id = _some_real(registry)
        registry.add_copy("p1", file_id, now=10.0)
        assert registry.holds("p1", file_id)
        assert "p1" in registry.holders(file_id)
        assert file_id in registry.files_of("p1")

    def test_unknown_file_rejected(self, registry):
        with pytest.raises(KeyError):
            registry.add_copy("p1", "nope", now=0.0)

    def test_delete_copy(self, registry):
        file_id = _some_real(registry)
        registry.add_copy("p1", file_id, now=0.0)
        holding = registry.delete_copy("p1", file_id, now=100.0)
        assert not registry.holds("p1", file_id)
        assert holding.deleted_at == 100.0

    def test_delete_without_holding_raises(self, registry):
        with pytest.raises(KeyError):
            registry.delete_copy("p1", _some_real(registry), now=0.0)

    def test_double_delete_raises(self, registry):
        file_id = _some_real(registry)
        registry.add_copy("p1", file_id, now=0.0)
        registry.delete_copy("p1", file_id, now=1.0)
        with pytest.raises(KeyError):
            registry.delete_copy("p1", file_id, now=2.0)

    def test_reacquisition_resets_holding(self, registry):
        file_id = _some_real(registry)
        registry.add_copy("p1", file_id, now=0.0)
        registry.delete_copy("p1", file_id, now=10.0)
        registry.add_copy("p1", file_id, now=20.0)
        assert registry.holds("p1", file_id)
        assert registry.retention("p1", file_id, now=30.0) == pytest.approx(10.0)


class TestRetention:
    def test_retention_while_held(self, registry):
        file_id = _some_real(registry)
        registry.add_copy("p1", file_id, now=100.0)
        assert registry.retention("p1", file_id, now=250.0) == pytest.approx(150.0)

    def test_retention_frozen_after_deletion(self, registry):
        file_id = _some_real(registry)
        registry.add_copy("p1", file_id, now=0.0)
        registry.delete_copy("p1", file_id, now=50.0)
        assert registry.retention("p1", file_id, now=500.0) == pytest.approx(50.0)

    def test_retention_none_when_never_held(self, registry):
        assert registry.retention("p1", _some_real(registry), now=10.0) is None


class TestDropPeer:
    def test_drop_peer_releases_all_copies(self, registry):
        real, fake = _some_real(registry), _some_fake(registry)
        registry.add_copy("p1", real, now=0.0)
        registry.add_copy("p1", fake, now=0.0)
        dropped = registry.drop_peer("p1", now=5.0)
        assert sorted(dropped) == sorted([real, fake])
        assert registry.files_of("p1") == set()

    def test_drop_unknown_peer_is_noop(self, registry):
        assert registry.drop_peer("ghost", now=0.0) == []


class TestGroundTruth:
    def test_is_fake_and_quality(self, registry):
        assert registry.is_fake(_some_fake(registry))
        assert not registry.is_fake(_some_real(registry))
        assert registry.quality(_some_fake(registry)) <= 0.2

    def test_size_positive(self, registry):
        assert registry.size(_some_real(registry)) > 0

    def test_current_holdings_only_live(self, registry):
        real = _some_real(registry)
        registry.add_copy("p1", real, now=0.0)
        registry.add_copy("p2", real, now=0.0)
        registry.delete_copy("p1", real, now=1.0)
        holders = [h.peer_id for h in registry.current_holdings()]
        assert holders == ["p2"]

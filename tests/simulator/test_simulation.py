"""Tests for repro.simulator.simulation: the wired-up system."""

import pytest

from repro.baselines import MultiDimensionalMechanism, NullMechanism
from repro.core import ReputationConfig
from repro.simulator import (ChurnModel, FileSharingSimulation, ScenarioSpec,
                             SimulationConfig)

DAY = 24 * 3600.0


def _config(**overrides):
    defaults = dict(
        scenario=ScenarioSpec(honest=20, free_riders=3, polluters=3),
        duration_seconds=1 * DAY,
        num_files=60,
        request_rate=0.02,
        seed=11,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestConfigValidation:
    def test_needs_two_peers(self):
        with pytest.raises(ValueError):
            SimulationConfig(scenario=ScenarioSpec(honest=1))

    def test_positive_duration(self):
        with pytest.raises(ValueError):
            SimulationConfig(duration_seconds=0.0)

    def test_threshold_bounds(self):
        with pytest.raises(ValueError):
            SimulationConfig(file_score_threshold=2.0)

    def test_scenario_total(self):
        scenario = ScenarioSpec(honest=5, polluters=2, colluders=3)
        assert scenario.total() == 10


class TestPopulation:
    def test_population_matches_scenario(self):
        simulation = FileSharingSimulation(_config())
        labels = [peer.label for peer in simulation.peers.values()]
        assert labels.count("honest") == 20
        assert labels.count("free-rider") == 3
        assert labels.count("polluter") == 3

    def test_colluders_form_cliques(self):
        config = _config(scenario=ScenarioSpec(honest=5, colluders=6))
        simulation = FileSharingSimulation(config)
        cliques = {tuple(peer.behavior.clique)
                   for peer in simulation.peers.values()
                   if peer.label == "colluder"}
        assert len(cliques) == 2  # 6 colluders / clique_size 5 -> 5 + 1...

    def test_forgers_get_victims(self):
        config = _config(scenario=ScenarioSpec(honest=5, forgers=2))
        simulation = FileSharingSimulation(config)
        for peer in simulation.peers.values():
            if peer.label == "forger":
                assert peer.behavior.victim_id is not None
                assert peer.behavior.victim_id.startswith("honest")

    def test_initial_replicas_seeded(self):
        simulation = FileSharingSimulation(_config())
        for catalog_file in simulation.catalog:
            assert len(simulation.registry.holders(catalog_file.file_id)) >= 1

    def test_fakes_seeded_at_fake_friendly_peers(self):
        simulation = FileSharingSimulation(_config())
        polluter_ids = {pid for pid, peer in simulation.peers.items()
                        if peer.behavior.wants_fake_copy()}
        for fake_id in simulation.catalog.fake_ids():
            holders = simulation.registry.holders(fake_id)
            assert holders <= polluter_ids


class TestRunOutcomes:
    @pytest.fixture(scope="class")
    def null_metrics(self):
        return FileSharingSimulation(_config(), NullMechanism()).run()

    @pytest.fixture(scope="class")
    def md_metrics(self):
        config = _config()
        reputation_config = ReputationConfig(
            retention_saturation_seconds=config.duration_seconds / 3)
        mechanism = MultiDimensionalMechanism(reputation_config)
        return FileSharingSimulation(config, mechanism).run()

    def test_downloads_happen(self, null_metrics):
        total = sum(stats.total_downloads
                    for stats in null_metrics.per_class.values())
        assert total > 100

    def test_null_mechanism_downloads_fakes(self, null_metrics):
        assert null_metrics.overall_fake_fraction > 0.2

    def test_md_blocks_fakes(self, md_metrics):
        blocked = sum(stats.fakes_blocked
                      for stats in md_metrics.per_class.values())
        assert blocked > 0

    def test_md_reduces_fake_fraction(self, null_metrics, md_metrics):
        assert (md_metrics.overall_fake_fraction
                < null_metrics.overall_fake_fraction)

    def test_deterministic_runs(self):
        first = FileSharingSimulation(_config(), NullMechanism()).run()
        second = FileSharingSimulation(_config(), NullMechanism()).run()
        assert first.overall_fake_fraction == second.overall_fake_fraction
        assert first.total_requests == second.total_requests

    def test_removal_latency_positive_when_fakes_detected(self, null_metrics):
        if null_metrics.fake_removal_latencies:
            assert null_metrics.mean_fake_removal_latency > 0.0


class TestServiceDifferentiationToggle:
    def test_disabled_differentiation_uses_base_bandwidth(self):
        config = _config(use_service_differentiation=False,
                         use_file_filtering=False)
        simulation = FileSharingSimulation(config, NullMechanism())
        metrics = simulation.run()
        for peer in simulation.peers.values():
            base = peer.upload_capacity / peer.upload_slots
            assert base > 0
        # With no differentiation, bandwidths recorded equal slot shares.
        bandwidths = [bandwidth
                      for stats in metrics.per_class.values()
                      for bandwidth in stats.bandwidths]
        assert bandwidths


class TestChurnIntegration:
    def test_churned_run_completes(self):
        config = _config(churn=ChurnModel(mean_session_seconds=3 * 3600.0,
                                          mean_offline_seconds=6 * 3600.0,
                                          seed=2))
        metrics = FileSharingSimulation(config, NullMechanism()).run()
        assert metrics.total_requests > 0

    def test_offline_peers_not_online(self):
        config = _config(churn=ChurnModel(seed=2))
        simulation = FileSharingSimulation(config, NullMechanism())
        simulation.run()
        # Every peer is either online or offline; flags stay consistent.
        for peer_id, peer in simulation.peers.items():
            assert simulation.is_online(peer_id) == peer.online


class TestWhitewashing:
    def test_whitewasher_changes_identity(self):
        config = _config(
            scenario=ScenarioSpec(honest=20, whitewashers=3),
            duration_seconds=2 * DAY)
        simulation = FileSharingSimulation(config, NullMechanism())
        simulation.run()
        reborn = [peer for peer in simulation.peers.values()
                  if peer.previous_identities]
        # At least one whitewasher should be caught blacklisting-wise and
        # shed its identity over two days of heavy pollution.
        assert reborn, "no whitewasher ever rejoined"
        for peer in reborn:
            assert peer.peer_id not in peer.previous_identities

"""Tests for the simulator -> trace export bridge."""

import pytest

from repro.analysis import tit_for_tat_coverage
from repro.baselines import NullMechanism
from repro.simulator import (FileSharingSimulation, ScenarioSpec,
                             SimulationConfig, TraceRecorder)
from repro.traces import compute_statistics

DAY = 24 * 3600.0


@pytest.fixture(scope="module")
def recorded():
    config = SimulationConfig(
        scenario=ScenarioSpec(honest=15, polluters=3),
        duration_seconds=1 * DAY, num_files=50, request_rate=0.01, seed=19)
    recorder = TraceRecorder(NullMechanism())
    simulation = FileSharingSimulation(config, recorder)
    metrics = simulation.run()
    return simulation, recorder, metrics


class TestRecording:
    def test_trace_matches_download_count(self, recorded):
        _, recorder, metrics = recorded
        total = sum(stats.total_downloads
                    for stats in metrics.per_class.values())
        assert len(recorder.trace) == total

    def test_records_follow_maze_schema(self, recorded):
        _, recorder, _ = recorded
        record = recorder.trace[0]
        assert record.uploader_id != record.downloader_id
        assert record.size_bytes > 0
        assert record.timestamp >= 0

    def test_timestamps_monotone(self, recorded):
        _, recorder, _ = recorded
        times = [record.timestamp for record in recorder.trace]
        assert times == sorted(times)

    def test_inner_mechanism_still_served(self, recorded):
        _, recorder, _ = recorded
        # Forwarding means the inner mechanism's interface stays usable.
        assert recorder.reputation("a", "b") == 0.0
        assert recorder.file_score("a", "f") is None


class TestAnnotateAndAnalyze:
    def test_annotate_fakes_from_catalog(self, recorded):
        simulation, recorder, _ = recorded
        flags = {f.file_id: f.is_fake for f in simulation.catalog}
        annotated = recorder.annotate_fakes(flags)
        assert len(annotated) == len(recorder.trace)
        assert annotated.fake_fraction() > 0.0

    def test_trace_statistics_run_on_export(self, recorded):
        _, recorder, _ = recorded
        statistics = compute_statistics(recorder.trace)
        assert statistics.num_records == len(recorder.trace)
        assert statistics.num_users > 10

    def test_coverage_analysis_runs_on_export(self, recorded):
        _, recorder, _ = recorded
        coverage = tit_for_tat_coverage(recorder.trace)
        assert 0.0 <= coverage <= 1.0

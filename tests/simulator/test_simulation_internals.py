"""Unit tests for FileSharingSimulation's internal decision logic."""

import pytest

from repro.baselines import NullMechanism
from repro.baselines.base import ReputationMechanism
from repro.simulator import (FileSharingSimulation, ScenarioSpec,
                             SimulationConfig)

DAY = 24 * 3600.0


class ScriptedMechanism(ReputationMechanism):
    """Reputation and distrust fully controlled by the test."""

    name = "scripted"

    def __init__(self, reputations=None, distrusted=None):
        self._reputations = dict(reputations or {})
        self._distrusted = set(distrusted or ())

    def reputation(self, observer, target):
        return self._reputations.get((observer, target), 0.0)

    def is_distrusted(self, observer, target):
        return (observer, target) in self._distrusted


def _simulation(mechanism, **overrides):
    defaults = dict(
        scenario=ScenarioSpec(honest=6),
        duration_seconds=DAY, num_files=10, request_rate=0.001, seed=3)
    defaults.update(overrides)
    return FileSharingSimulation(SimulationConfig(**defaults), mechanism)


class TestServiceFactor:
    def test_uninformed_observer_is_unknown(self):
        simulation = _simulation(NullMechanism())
        factor, known = simulation._service_factor("honest-0000",
                                                   "honest-0001")
        assert factor == 0.0 and not known

    def test_distrusted_target_gets_zero_known(self):
        mechanism = ScriptedMechanism(
            reputations={("honest-0000", "honest-0002"): 1.0},
            distrusted={("honest-0000", "honest-0001")})
        simulation = _simulation(mechanism)
        factor, known = simulation._service_factor("honest-0000",
                                                   "honest-0001")
        assert factor == 0.0 and known

    def test_unknown_target_under_informed_observer_is_newcomer(self):
        mechanism = ScriptedMechanism(
            reputations={("honest-0000", "honest-0002"): 1.0})
        simulation = _simulation(mechanism)
        factor, known = simulation._service_factor("honest-0000",
                                                   "honest-0001")
        assert factor == simulation.NEWCOMER_FACTOR and known

    def test_factor_normalised_by_best(self):
        mechanism = ScriptedMechanism(reputations={
            ("honest-0000", "honest-0001"): 0.25,
            ("honest-0000", "honest-0002"): 0.5,
        })
        simulation = _simulation(mechanism)
        factor, _ = simulation._service_factor("honest-0000", "honest-0001")
        assert factor == pytest.approx(0.5)

    def test_factor_clamped_at_one(self):
        mechanism = ScriptedMechanism(reputations={
            ("honest-0000", "honest-0001"): 2.0,
            ("honest-0000", "honest-0002"): 1.0,
        })
        simulation = _simulation(mechanism)
        factor, _ = simulation._service_factor("honest-0000", "honest-0001")
        assert factor == 1.0


class TestQueueOffset:
    def test_zero_when_differentiation_disabled(self):
        mechanism = ScriptedMechanism(
            reputations={("honest-0000", "honest-0001"): 1.0})
        simulation = _simulation(mechanism,
                                 use_service_differentiation=False)
        assert simulation._queue_offset("honest-0000", "honest-0001") == 0.0

    def test_offset_scales_with_factor(self):
        mechanism = ScriptedMechanism(
            reputations={("honest-0000", "honest-0001"): 1.0})
        simulation = _simulation(mechanism, max_queue_offset_seconds=100.0)
        offset = simulation._queue_offset("honest-0000", "honest-0001")
        assert offset == pytest.approx(100.0)

    def test_uninformed_uploader_gives_no_offset(self):
        simulation = _simulation(NullMechanism())
        assert simulation._queue_offset("honest-0000", "honest-0001") == 0.0


class TestChooseUploader:
    def _setup_holders(self, simulation, file_id, holders):
        for holder in holders:
            simulation.peers[holder].online = True
            if not simulation.registry.holds(holder, file_id):
                simulation.registry.add_copy(holder, file_id, 0.0)

    def test_prefers_high_reputation_holder(self):
        mechanism = ScriptedMechanism(reputations={
            ("honest-0000", "honest-0001"): 1.0,
            ("honest-0000", "honest-0002"): 0.1,
        })
        simulation = _simulation(mechanism)
        file_id = simulation.catalog.files[0].file_id
        self._setup_holders(simulation, file_id,
                            ["honest-0001", "honest-0002"])
        chosen = simulation._choose_uploader("honest-0000", file_id)
        assert chosen == "honest-0001"

    def test_avoids_distrusted_holder(self):
        mechanism = ScriptedMechanism(
            distrusted={("honest-0000", "honest-0001")})
        simulation = _simulation(mechanism)
        file_id = simulation.catalog.files[0].file_id
        self._setup_holders(simulation, file_id,
                            ["honest-0001", "honest-0002"])
        chosen = simulation._choose_uploader("honest-0000", file_id)
        assert chosen == "honest-0002"

    def test_none_when_no_online_holder(self):
        simulation = _simulation(NullMechanism())
        file_id = simulation.catalog.files[0].file_id
        for peer in simulation.peers.values():
            peer.online = False
        assert simulation._choose_uploader("honest-0000", file_id) is None

    def test_requester_never_chosen(self):
        simulation = _simulation(NullMechanism())
        file_id = simulation.catalog.files[0].file_id
        self._setup_holders(simulation, file_id, ["honest-0000"])
        assert simulation._choose_uploader("honest-0000", file_id) is None


class TestWhitewashInternals:
    def test_whitewash_drops_holdings_and_identity(self):
        simulation = _simulation(NullMechanism())
        peer = simulation.peers["honest-0000"]
        peer.online = True
        file_id = simulation.catalog.files[0].file_id
        if not simulation.registry.holds(peer.peer_id, file_id):
            simulation.registry.add_copy(peer.peer_id, file_id, 0.0)
        fresh = simulation.whitewash(peer)
        assert not peer.online
        assert fresh.online
        assert simulation.registry.files_of(peer.peer_id) == set()
        assert fresh.previous_identities == [peer.peer_id]

    def test_whitewash_resets_blacklist_count(self):
        simulation = _simulation(NullMechanism())
        peer = simulation.peers["honest-0000"]
        simulation._blacklist_counts[peer.peer_id] = 5
        fresh = simulation.whitewash(peer)
        assert simulation.blacklist_count(fresh.peer_id) == 0

"""Tests for the chaos harness (repro.simulator.chaos)."""

import pytest

from repro.simulator import ChaosConfig, run_chaos_point, run_chaos_sweep

_SMALL = dict(peers=12, files=15, rounds=8, seed=5)


class TestChaosConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ChaosConfig(peers=2)
        with pytest.raises(ValueError):
            ChaosConfig(loss_rate=1.0)
        with pytest.raises(ValueError):
            ChaosConfig(churn_rate=1.5)
        with pytest.raises(ValueError):
            ChaosConfig(rounds=0)


class TestChaosPoint:
    def test_fault_free_cell_is_perfect(self):
        result = run_chaos_point(ChaosConfig(**_SMALL))
        assert result.availability == 1.0
        assert result.drops == 0
        assert result.retries == 0
        assert result.failed_lookups == 0

    def test_deterministic_for_seed(self):
        config = ChaosConfig(loss_rate=0.1, churn_rate=0.3, **_SMALL)
        a = run_chaos_point(config)
        b = run_chaos_point(config)
        assert a.availability == b.availability
        assert a.mean_hops == b.mean_hops
        assert a.drops == b.drops
        assert a.scores == b.scores

    def test_loss_produces_drops_and_retries(self):
        result = run_chaos_point(
            ChaosConfig(loss_rate=0.15, **_SMALL))
        assert result.drops > 0
        assert result.retries > 0

    def test_churn_triggers_repair(self):
        result = run_chaos_point(
            ChaosConfig(churn_rate=0.6, **_SMALL))
        assert result.repairs > 0

    def test_scores_recover_quality_ordering(self):
        """Fault-free, the DHT-served scores must rank peers by quality."""
        result = run_chaos_point(ChaosConfig(**_SMALL))
        peers = sorted(result.scores)
        scored = [pid for pid in peers if result.scores[pid] > 0.0]
        values = [result.scores[pid] for pid in scored]
        assert values == sorted(values)  # peer index == quality order


class TestChaosSweep:
    def test_sweep_annotates_against_baseline(self):
        results = run_chaos_sweep([0.1], [0.0], peers=12, files=15,
                                  rounds=8, seed=5)
        assert len(results) == 2  # (0,0) baseline injected
        baseline = results[0]
        assert baseline.loss_rate == 0.0 and baseline.churn_rate == 0.0
        for result in results:
            assert result.kendall_tau_vs_baseline is not None
            assert result.hop_ratio_vs_baseline is not None
        assert baseline.kendall_tau_vs_baseline == 1.0

    def test_acceptance_thresholds_small_grid(self):
        """The ISSUE acceptance bar at test scale: 10% loss + churn keeps
        availability >= 95% and hop counts within 2x of fault-free."""
        results = run_chaos_sweep([0.1], [0.3], peers=16, files=20,
                                  rounds=12, seed=7)
        worst = [r for r in results if r.loss_rate == 0.1
                 and r.churn_rate == 0.3][0]
        assert worst.availability >= 0.95
        assert worst.hop_ratio_vs_baseline <= 2.0
        assert worst.kendall_tau_vs_baseline >= 0.6

"""Tests for repro.simulator.behaviors via a recording stub simulation."""

import random

import pytest

from repro.simulator import (ColluderBehavior, ForgerBehavior,
                             FreeRiderBehavior, HonestBehavior,
                             LazyVoterBehavior, Peer, PolluterBehavior,
                             WhitewasherBehavior)


class StubSimulation:
    """Records the helper calls behaviours make."""

    def __init__(self, fake_files=(), qualities=None, votes=None, seed=0):
        self.rng = random.Random(seed)
        self._fake = set(fake_files)
        self._qualities = qualities or {}
        self._votes = dict(votes or {})
        self.voted = []
        self.deleted = []
        self.blacklisted = []
        self.ranked = []
        self.whitewashed = []
        self._online = set()
        self._blacklist_counts = {}
        self.registry = self

    # registry surface used by behaviours
    def is_fake(self, file_id):
        return file_id in self._fake

    def quality(self, file_id):
        return self._qualities.get(file_id, 0.0 if file_id in self._fake else 0.9)

    def files_of(self, peer_id):
        return set()

    # simulation helper surface
    def peer_votes(self, peer, file_id, vote):
        self.voted.append((peer.peer_id, file_id, vote))

    def peer_deletes_file(self, peer, file_id, fake_detected=False):
        self.deleted.append((peer.peer_id, file_id))

    def peer_blacklists(self, peer, target):
        self.blacklisted.append((peer.peer_id, target))

    def peer_ranks(self, peer, target, rating):
        self.ranked.append((peer.peer_id, target, rating))

    def known_vote(self, user_id, file_id):
        return self._votes.get((user_id, file_id))

    def is_online(self, peer_id):
        return peer_id in self._online

    def set_online(self, *peer_ids):
        self._online.update(peer_ids)

    def blacklist_count(self, peer_id):
        return self._blacklist_counts.get(peer_id, 0)

    def whitewash(self, peer):
        self.whitewashed.append(peer.peer_id)


def _peer(behavior, peer_id="p"):
    return Peer(peer_id, behavior)


class TestHonestBehavior:
    def test_detects_and_deletes_fake(self):
        sim = StubSimulation(fake_files={"fake"}, seed=1)
        behavior = HonestBehavior(detection_probability=1.0,
                                  vote_probability=0.0,
                                  blacklist_probability=0.0)
        behavior.on_download_complete(sim, _peer(behavior), "fake", "up")
        assert sim.deleted == [("p", "fake")]

    def test_blacklists_fake_uploader(self):
        sim = StubSimulation(fake_files={"fake"}, seed=1)
        behavior = HonestBehavior(detection_probability=1.0,
                                  blacklist_probability=1.0,
                                  vote_probability=0.0)
        behavior.on_download_complete(sim, _peer(behavior), "fake", "up")
        assert sim.blacklisted == [("p", "up")]

    def test_keeps_real_file(self):
        sim = StubSimulation(seed=1)
        behavior = HonestBehavior(vote_probability=0.0, rank_probability=0.0)
        behavior.on_download_complete(sim, _peer(behavior), "real", "up")
        assert sim.deleted == []

    def test_votes_near_quality(self):
        sim = StubSimulation(qualities={"real": 0.8}, seed=2)
        behavior = HonestBehavior(vote_probability=1.0, vote_noise=0.0,
                                  rank_probability=0.0)
        behavior.on_download_complete(sim, _peer(behavior), "real", "up")
        assert len(sim.voted) == 1
        assert sim.voted[0][2] == pytest.approx(0.8)

    def test_ranks_uploader_sometimes(self):
        sim = StubSimulation(seed=3)
        behavior = HonestBehavior(vote_probability=0.0, rank_probability=1.0)
        behavior.on_download_complete(sim, _peer(behavior), "real", "up")
        assert sim.ranked == [("p", "up", 0.9)]

    def test_missed_detection_keeps_fake(self):
        sim = StubSimulation(fake_files={"fake"}, seed=1)
        behavior = HonestBehavior(detection_probability=0.0,
                                  vote_probability=0.0, rank_probability=0.0)
        behavior.on_download_complete(sim, _peer(behavior), "fake", "up")
        assert sim.deleted == []


class TestLazyVoter:
    def test_never_votes_or_ranks(self):
        sim = StubSimulation(seed=1)
        behavior = LazyVoterBehavior()
        behavior.on_download_complete(sim, _peer(behavior), "real", "up")
        assert sim.voted == [] and sim.ranked == []

    def test_still_deletes_fakes(self):
        sim = StubSimulation(fake_files={"fake"}, seed=1)
        behavior = LazyVoterBehavior(detection_probability=1.0,
                                     blacklist_probability=0.0)
        behavior.on_download_complete(sim, _peer(behavior), "fake", "up")
        assert sim.deleted == [("p", "fake")]


class TestFreeRider:
    def test_does_not_share(self):
        assert not FreeRiderBehavior().shares()

    def test_honest_peer_shares(self):
        assert HonestBehavior().shares()


class TestPolluter:
    def test_keeps_fakes(self):
        sim = StubSimulation(fake_files={"fake"}, seed=1)
        behavior = PolluterBehavior(vote_probability=0.0)
        behavior.on_download_complete(sim, _peer(behavior), "fake", "up")
        assert sim.deleted == []

    def test_praises_fakes(self):
        sim = StubSimulation(fake_files={"fake"}, seed=1)
        behavior = PolluterBehavior(vote_probability=1.0)
        behavior.on_download_complete(sim, _peer(behavior), "fake", "up")
        assert sim.voted[0][2] == 1.0

    def test_disparages_real_files(self):
        sim = StubSimulation(seed=1)
        behavior = PolluterBehavior(vote_probability=1.0)
        behavior.on_download_complete(sim, _peer(behavior), "real", "up")
        assert sim.voted[0][2] <= 0.2

    def test_wants_fake_copies(self):
        assert PolluterBehavior().wants_fake_copy()
        assert not HonestBehavior().wants_fake_copy()


class TestColluder:
    def test_boosts_clique_members(self):
        sim = StubSimulation(seed=1)
        behavior = ColluderBehavior(clique=["c1", "c2", "c3"])
        sim.set_online("c2", "c3")
        behavior.on_periodic(sim, _peer(behavior, "c1"))
        assert ("c1", "c2", 1.0) in sim.ranked
        assert ("c1", "c3", 1.0) in sim.ranked

    def test_skips_self_and_offline(self):
        sim = StubSimulation(seed=1)
        behavior = ColluderBehavior(clique=["c1", "c2"])
        behavior.on_periodic(sim, _peer(behavior, "c1"))  # c2 offline
        assert sim.ranked == []

    def test_no_clique_is_noop(self):
        sim = StubSimulation(seed=1)
        ColluderBehavior().on_periodic(sim, _peer(ColluderBehavior(), "c1"))
        assert sim.ranked == []


class TestForger:
    def test_mirrors_victim_vote(self):
        sim = StubSimulation(votes={("victim", "f"): 0.77}, seed=1)
        behavior = ForgerBehavior(victim_id="victim")
        behavior.on_download_complete(sim, _peer(behavior), "f", "up")
        assert sim.voted == [("p", "f", 0.77)]

    def test_silent_when_victim_has_not_voted(self):
        sim = StubSimulation(seed=1)
        behavior = ForgerBehavior(victim_id="victim")
        behavior.on_download_complete(sim, _peer(behavior), "f", "up")
        assert sim.voted == []

    def test_no_victim_is_noop(self):
        sim = StubSimulation(seed=1)
        behavior = ForgerBehavior()
        behavior.on_download_complete(sim, _peer(behavior), "f", "up")
        behavior.on_periodic(sim, _peer(behavior))
        assert sim.voted == []


class TestWhitewasher:
    def test_rejoins_after_enough_blacklistings(self):
        sim = StubSimulation(seed=1)
        sim._blacklist_counts["p"] = 3
        behavior = WhitewasherBehavior(rejoin_threshold=3)
        behavior.on_periodic(sim, _peer(behavior))
        assert sim.whitewashed == ["p"]

    def test_stays_below_threshold(self):
        sim = StubSimulation(seed=1)
        sim._blacklist_counts["p"] = 2
        behavior = WhitewasherBehavior(rejoin_threshold=3)
        behavior.on_periodic(sim, _peer(behavior))
        assert sim.whitewashed == []


class TestCamouflagedPolluter:
    def test_votes_honestly_on_real_files(self):
        from repro.simulator import CamouflagedPolluterBehavior
        sim = StubSimulation(qualities={"real": 0.8}, seed=2)
        behavior = CamouflagedPolluterBehavior(vote_probability=1.0,
                                               vote_noise=0.0)
        behavior.on_download_complete(sim, _peer(behavior), "real", "up")
        assert sim.voted[0][2] == pytest.approx(0.8)

    def test_still_praises_fakes(self):
        from repro.simulator import CamouflagedPolluterBehavior
        sim = StubSimulation(fake_files={"fake"}, seed=2)
        behavior = CamouflagedPolluterBehavior(vote_probability=1.0)
        behavior.on_download_complete(sim, _peer(behavior), "fake", "up")
        assert sim.voted[0][2] == 1.0

    def test_keeps_fakes_like_a_polluter(self):
        from repro.simulator import CamouflagedPolluterBehavior
        sim = StubSimulation(fake_files={"fake"}, seed=2)
        behavior = CamouflagedPolluterBehavior(vote_probability=0.0)
        behavior.on_download_complete(sim, _peer(behavior), "fake", "up")
        assert sim.deleted == []
        assert behavior.wants_fake_copy()

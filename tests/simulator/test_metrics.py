"""Tests for repro.simulator.metrics and peers."""

import pytest

from repro.simulator import (HonestBehavior, Peer, SimulationMetrics,
                             UploadRequest)


class TestClassStats:
    def test_download_accounting(self):
        metrics = SimulationMetrics()
        metrics.record_download("honest", is_fake=False, size_bytes=100.0,
                                wait_time=2.0, bandwidth=50.0)
        metrics.record_download("honest", is_fake=True, size_bytes=10.0,
                                wait_time=4.0, bandwidth=25.0)
        stats = metrics.stats_for("honest")
        assert stats.total_downloads == 2
        assert stats.fake_fraction == pytest.approx(0.5)
        assert stats.mean_wait == pytest.approx(3.0)
        assert stats.mean_bandwidth == pytest.approx(37.5)
        assert stats.bytes_received == pytest.approx(110.0)

    def test_empty_stats_are_zero(self):
        stats = SimulationMetrics().stats_for("ghost")
        assert stats.fake_fraction == 0.0
        assert stats.mean_wait == 0.0

    def test_blocked_and_rejected(self):
        metrics = SimulationMetrics()
        metrics.record_blocked_fake("honest")
        metrics.record_rejected_request("honest")
        stats = metrics.stats_for("honest")
        assert stats.fakes_blocked == 1
        assert stats.requests_rejected == 1


class TestFakeRemovalLatency:
    def test_latency_measured_from_copy_creation(self):
        metrics = SimulationMetrics()
        metrics.record_fake_copy("f", "p", now=100.0)
        metrics.record_fake_removal("f", "p", now=400.0)
        assert metrics.mean_fake_removal_latency == pytest.approx(300.0)

    def test_removal_without_creation_ignored(self):
        metrics = SimulationMetrics()
        metrics.record_fake_removal("f", "p", now=400.0)
        assert metrics.fake_removal_latencies == []

    def test_outstanding_copies_counted(self):
        metrics = SimulationMetrics()
        metrics.record_fake_copy("f", "p1", now=0.0)
        metrics.record_fake_copy("f", "p2", now=0.0)
        metrics.record_fake_removal("f", "p1", now=10.0)
        assert metrics.outstanding_fake_copies == 1


class TestAggregates:
    def test_overall_fake_fraction_across_classes(self):
        metrics = SimulationMetrics()
        metrics.record_download("a", True, 1.0, 0.0, 1.0)
        metrics.record_download("b", False, 1.0, 0.0, 1.0)
        metrics.record_download("b", False, 1.0, 0.0, 1.0)
        assert metrics.overall_fake_fraction == pytest.approx(1 / 3)

    def test_judgement_counters(self):
        metrics = SimulationMetrics()
        metrics.record_judgement(blind=True)
        metrics.record_judgement(blind=False)
        metrics.record_judgement(blind=False)
        assert metrics.blind_judgements == 1
        assert metrics.informed_judgements == 2

    def test_class_labels_sorted(self):
        metrics = SimulationMetrics()
        metrics.record_download("z", False, 1.0, 0.0, 1.0)
        metrics.record_download("a", False, 1.0, 0.0, 1.0)
        assert metrics.class_labels() == ["a", "z"]


class TestPeer:
    def test_slot_accounting(self):
        peer = Peer("p", HonestBehavior(), upload_slots=2)
        assert peer.has_free_slot
        peer.active_uploads = 2
        assert not peer.has_free_slot

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            Peer("p", HonestBehavior(), upload_capacity=0.0)

    def test_invalid_slots_rejected(self):
        with pytest.raises(ValueError):
            Peer("p", HonestBehavior(), upload_slots=0)

    def test_label_comes_from_behavior(self):
        assert Peer("p", HonestBehavior()).label == "honest"

    def test_upload_request_fields(self):
        request = UploadRequest("r", "f", arrival_time=10.0,
                                effective_time=5.0)
        assert request.effective_time < request.arrival_time

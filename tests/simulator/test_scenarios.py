"""Tests for the named scenario presets."""

import pytest

from repro.baselines import NullMechanism
from repro.simulator import (SCENARIOS, FileSharingSimulation, get_scenario,
                             kazaa_pollution, maze_incentive)


class TestScenarioRegistry:
    def test_all_scenarios_produce_valid_configs(self):
        for name in SCENARIOS:
            config = get_scenario(name, seed=1)
            assert config.scenario.total() >= 2
            assert config.duration_seconds > 0

    def test_unknown_scenario_lists_alternatives(self):
        with pytest.raises(KeyError, match="balanced-mix"):
            get_scenario("frobnicate")

    def test_seed_propagates(self):
        assert get_scenario("balanced-mix", seed=7).seed == 7


class TestScenarioShapes:
    def test_kazaa_pollution_is_heavily_polluted_and_vote_sparse(self):
        config = kazaa_pollution()
        assert config.fake_ratio >= 0.4
        assert config.scenario.honest_vote_probability <= 0.1
        assert config.scenario.polluters >= 5

    def test_maze_incentive_is_free_rider_heavy(self):
        config = maze_incentive()
        assert config.scenario.free_riders >= config.scenario.polluters * 5

    def test_collusion_stress_has_cliques(self):
        config = get_scenario("collusion-stress")
        assert config.scenario.colluders >= 2 * config.scenario.clique_size

    def test_churn_heavy_enables_churn(self):
        config = get_scenario("churn-heavy")
        assert config.churn is not None and config.churn.enabled


class TestScenarioRuns:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_every_scenario_simulates(self, name):
        config = get_scenario(name, seed=5)
        # Shrink for test speed: quarter-day, low request rate.
        small = type(config)(
            scenario=config.scenario,
            duration_seconds=6 * 3600.0,
            num_files=40,
            fake_ratio=config.fake_ratio,
            request_rate=0.005,
            seed=config.seed,
            churn=config.churn,
        )
        metrics = FileSharingSimulation(small, NullMechanism()).run()
        assert metrics.total_requests >= 0

"""Tests for repro.simulator.engine."""

import pytest

from repro.simulator import EventEngine


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = EventEngine()
        fired = []
        engine.schedule(5.0, lambda e: fired.append("late"))
        engine.schedule(1.0, lambda e: fired.append("early"))
        engine.run()
        assert fired == ["early", "late"]

    def test_simultaneous_events_fire_in_schedule_order(self):
        engine = EventEngine()
        fired = []
        engine.schedule(1.0, lambda e: fired.append("first"))
        engine.schedule(1.0, lambda e: fired.append("second"))
        engine.run()
        assert fired == ["first", "second"]

    def test_clock_advances_to_event_time(self):
        engine = EventEngine()
        seen = []
        engine.schedule(2.5, lambda e: seen.append(e.now))
        engine.run()
        assert seen == [2.5]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventEngine().schedule(-1.0, lambda e: None)

    def test_schedule_at_past_rejected(self):
        engine = EventEngine(start_time=10.0)
        with pytest.raises(ValueError):
            engine.schedule_at(5.0, lambda e: None)

    def test_callbacks_can_schedule_more(self):
        engine = EventEngine()
        fired = []

        def chain(e):
            fired.append(e.now)
            if len(fired) < 3:
                e.schedule(1.0, chain)

        engine.schedule(1.0, chain)
        engine.run()
        assert fired == [1.0, 2.0, 3.0]


class TestRunControl:
    def test_until_bounds_processing(self):
        engine = EventEngine()
        fired = []
        engine.schedule(1.0, lambda e: fired.append(1))
        engine.schedule(10.0, lambda e: fired.append(10))
        engine.run(until=5.0)
        assert fired == [1]
        assert engine.now == 5.0  # clock advanced to the horizon

    def test_resume_after_until(self):
        engine = EventEngine()
        fired = []
        engine.schedule(1.0, lambda e: fired.append(1))
        engine.schedule(10.0, lambda e: fired.append(10))
        engine.run(until=5.0)
        engine.run()
        assert fired == [1, 10]

    def test_max_events(self):
        engine = EventEngine()
        fired = []
        for index in range(5):
            engine.schedule(float(index + 1), lambda e, i=index: fired.append(i))
        processed = engine.run(max_events=2)
        assert processed == 2
        assert fired == [0, 1]

    def test_stop_halts_immediately(self):
        engine = EventEngine()
        fired = []

        def stopper(e):
            fired.append("stop")
            e.stop()

        engine.schedule(1.0, stopper)
        engine.schedule(2.0, lambda e: fired.append("never"))
        engine.run()
        assert fired == ["stop"]

    def test_events_processed_counter(self):
        engine = EventEngine()
        engine.schedule(1.0, lambda e: None)
        engine.schedule(2.0, lambda e: None)
        engine.run()
        assert engine.events_processed == 2


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        engine = EventEngine()
        fired = []
        handle = engine.schedule(1.0, lambda e: fired.append("cancelled"))
        engine.schedule(2.0, lambda e: fired.append("kept"))
        engine.cancel(handle)
        engine.run()
        assert fired == ["kept"]

    def test_double_cancel_is_safe(self):
        engine = EventEngine()
        handle = engine.schedule(1.0, lambda e: None)
        engine.cancel(handle)
        engine.cancel(handle)
        engine.run()

    def test_event_handles_order(self):
        engine = EventEngine()
        a = engine.schedule(1.0, lambda e: None)
        b = engine.schedule(2.0, lambda e: None)
        assert a < b

"""Smoke tests: every example script must run cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *args],
        capture_output=True, text=True, timeout=300)


class TestExamples:
    def test_quickstart(self):
        result = _run("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "REJECT AS FAKE" in result.stdout
        assert "upload queue" in result.stdout

    def test_pollution_defense(self):
        result = _run("pollution_defense.py")
        assert result.returncode == 0, result.stderr
        assert "multidimensional" in result.stdout
        assert "cut the fake-download rate" in result.stdout

    def test_dht_deployment(self):
        result = _run("dht_deployment.py")
        assert result.returncode == 0, result.stderr
        assert "step 6" in result.stdout
        assert "forged evaluation accepted? False" in result.stdout
        assert "flagged=True" in result.stdout

    def test_coverage_study_small(self):
        result = _run("coverage_study.py", "--small")
        assert result.returncode == 0, result.stderr
        assert "k=100%" in result.stdout
        assert "Tit-for-Tat" in result.stdout

    def test_incentive_lab(self):
        result = _run("incentive_lab.py")
        assert result.returncode == 0, result.stderr
        assert "free-rider" in result.stdout
        assert "mean credit" in result.stdout

    def test_tune_weights(self):
        result = _run("tune_weights.py")
        assert result.returncode == 0, result.stderr
        assert "best eta" in result.stdout
        assert "best weights" in result.stdout

    def test_scenario_tour_quick(self):
        result = _run("scenario_tour.py", "--quick")
        assert result.returncode == 0, result.stderr
        assert "kazaa-pollution" in result.stdout
        assert "multidimensional" in result.stdout

    def test_client_restart(self):
        result = _run("client_restart.py")
        assert result.returncode == 0, result.stderr
        assert "after restart" in result.stdout
        assert "REJECT" in result.stdout
        assert "spammer still blacklisted: True" in result.stdout

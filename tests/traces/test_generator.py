"""Tests for repro.traces.generator: the Maze-like synthetic trace."""

import pytest

from repro.traces import MazeTraceGenerator, TraceParameters

DAY = 24 * 3600.0


@pytest.fixture(scope="module")
def generated():
    parameters = TraceParameters(num_users=150, num_files=200,
                                 num_actions=4000, trace_days=10.0, seed=5)
    return MazeTraceGenerator(parameters).generate()


class TestParameters:
    def test_defaults_are_valid(self):
        TraceParameters()

    def test_too_few_users_rejected(self):
        with pytest.raises(ValueError):
            TraceParameters(num_users=1)

    def test_negative_actions_rejected(self):
        with pytest.raises(ValueError):
            TraceParameters(num_actions=-1)

    def test_departure_fraction_bounds(self):
        with pytest.raises(ValueError):
            TraceParameters(departure_fraction=1.0)

    def test_initial_holders_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceParameters(initial_holders=0)


class TestGeneratedTrace:
    def test_yields_most_requested_actions(self, generated):
        # Some samples are infeasible (no holder online); the vast majority
        # must still materialise.
        assert len(generated.trace) > 0.8 * 4000

    def test_timestamps_sorted_and_in_horizon(self, generated):
        times = [r.timestamp for r in generated.trace]
        assert times == sorted(times)
        assert all(0 <= t < 10.0 * DAY for t in times)

    def test_uploader_always_a_holder(self, generated):
        """Replay invariant: an uploader held the file before serving it."""
        holders = {file_id: set(users)
                   for file_id, users in generated.initial_holdings.items()}
        for record in generated.trace:
            assert record.uploader_id in holders[record.content_hash]
            holders[record.content_hash].add(record.downloader_id)

    def test_no_duplicate_acquisitions(self, generated):
        seen = set()
        for record in generated.trace:
            key = (record.downloader_id, record.content_hash)
            assert key not in seen
            seen.add(key)

    def test_participants_within_lifetimes(self, generated):
        for record in generated.trace:
            join, leave = generated.lifetimes[record.downloader_id]
            assert join <= record.timestamp < leave
            join, leave = generated.lifetimes[record.uploader_id]
            assert join <= record.timestamp < leave

    def test_fake_flags_match_catalog(self, generated):
        for record in generated.trace[:200]:
            assert record.is_fake == generated.catalog.get(
                record.content_hash).is_fake

    def test_deterministic_for_seed(self):
        parameters = TraceParameters(num_users=50, num_files=60,
                                     num_actions=500, trace_days=5.0, seed=9)
        first = MazeTraceGenerator(parameters).generate()
        second = MazeTraceGenerator(parameters).generate()
        assert len(first.trace) == len(second.trace)
        assert all(a == b for a, b in zip(first.trace, second.trace))

    def test_different_seeds_differ(self):
        base = TraceParameters(num_users=50, num_files=60, num_actions=500,
                               trace_days=5.0, seed=1)
        other = TraceParameters(num_users=50, num_files=60, num_actions=500,
                                trace_days=5.0, seed=2)
        first = MazeTraceGenerator(base).generate()
        second = MazeTraceGenerator(other).generate()
        assert any(a != b for a, b in zip(first.trace, second.trace))


class TestMazeLikeShape:
    def test_activity_is_heavy_tailed(self, generated):
        from repro.traces import compute_statistics
        statistics = compute_statistics(generated.trace)
        # Log-normal activity should give a clearly unequal distribution.
        assert statistics.downloader_activity_gini > 0.3

    def test_popularity_is_zipf_like(self, generated):
        from repro.traces import compute_statistics
        statistics = compute_statistics(generated.trace)
        assert 0.3 < statistics.popularity_zipf_exponent < 2.0

    def test_evening_heavy_diurnal_profile(self, generated):
        evening = sum(1 for r in generated.trace
                      if (r.timestamp % DAY) >= 12 * 3600)
        assert evening > 0.6 * len(generated.trace)

"""Tests for repro.traces.io: JSONL/CSV persistence."""

import pytest

from repro.traces import (DownloadRecord, DownloadTrace, read_csv, read_jsonl,
                          write_csv, write_jsonl)


@pytest.fixture
def trace():
    trace = DownloadTrace()
    trace.append(DownloadRecord("a", "b", 0.0, "f1", "f1.dat", 100.5, False))
    trace.append(DownloadRecord("b", "c", 3600.0, "f2", "f2.dat", 0.0, True))
    return trace


class TestJSONL:
    def test_round_trip(self, trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl(trace, path)
        restored = read_jsonl(path)
        assert list(restored) == list(trace)

    def test_one_line_per_record(self, trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl(trace, path)
        lines = [l for l in path.read_text().splitlines() if l.strip()]
        assert len(lines) == len(trace)

    def test_blank_lines_ignored(self, trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl(trace, path)
        path.write_text(path.read_text() + "\n\n")
        assert len(read_jsonl(path)) == len(trace)

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        write_jsonl(DownloadTrace(), path)
        assert len(read_jsonl(path)) == 0


class TestCSV:
    def test_round_trip(self, trace, tmp_path):
        path = tmp_path / "trace.csv"
        write_csv(trace, path)
        restored = read_csv(path)
        assert list(restored) == list(trace)

    def test_header_present(self, trace, tmp_path):
        path = tmp_path / "trace.csv"
        write_csv(trace, path)
        header = path.read_text().splitlines()[0]
        for field in ("uploader_id", "downloader_id", "timestamp",
                      "content_hash", "filename", "size_bytes", "is_fake"):
            assert field in header

    def test_fake_flag_survives_round_trip(self, trace, tmp_path):
        path = tmp_path / "trace.csv"
        write_csv(trace, path)
        restored = read_csv(path)
        assert [r.is_fake for r in restored] == [False, True]

    def test_cross_format_consistency(self, trace, tmp_path):
        jsonl_path = tmp_path / "t.jsonl"
        csv_path = tmp_path / "t.csv"
        write_jsonl(trace, jsonl_path)
        write_csv(trace, csv_path)
        assert list(read_jsonl(jsonl_path)) == list(read_csv(csv_path))

"""Tests for repro.traces.replay: the Figure 1 coverage machinery."""

import pytest

from repro.traces import CoverageReplayer, MazeTraceGenerator, TraceParameters
from repro.traces.replay import CoveragePoint, CoverageSeries, run_coverage_sweep


@pytest.fixture(scope="module")
def generated():
    parameters = TraceParameters(num_users=150, num_files=200,
                                 num_actions=4000, trace_days=10.0, seed=5)
    return MazeTraceGenerator(parameters).generate()


class TestCoveragePoint:
    def test_fraction(self):
        assert CoveragePoint(day=0, covered=5, total=10).fraction == 0.5

    def test_fraction_of_empty_day(self):
        assert CoveragePoint(day=0, covered=0, total=0).fraction == 0.0


class TestCoverageSeries:
    def test_overall_aggregates_days(self):
        series = CoverageSeries(evaluation_coverage=1.0, points=[
            CoveragePoint(0, 5, 10), CoveragePoint(1, 15, 20)])
        assert series.overall == pytest.approx(20 / 30)

    def test_steady_state_skips_warmup(self):
        series = CoverageSeries(evaluation_coverage=1.0, points=[
            CoveragePoint(day, day, 10) for day in range(10)])
        assert series.steady_state(skip_days=5) > series.overall

    def test_steady_state_of_short_series_falls_back(self):
        series = CoverageSeries(evaluation_coverage=1.0,
                                points=[CoveragePoint(0, 5, 10)])
        assert series.steady_state(skip_days=5) == pytest.approx(0.5)


class TestReplayer:
    def test_invalid_coverage_rejected(self, generated):
        with pytest.raises(ValueError):
            CoverageReplayer(generated, 1.5)

    def test_invalid_rank_probability_rejected(self, generated):
        with pytest.raises(ValueError):
            CoverageReplayer(generated, 0.5, rank_probability=2.0)

    def test_zero_coverage_covers_nothing(self, generated):
        series = CoverageReplayer(generated, 0.0).run()
        assert series.overall == 0.0

    def test_coverage_monotone_in_evaluation_coverage(self, generated):
        """The heart of Figure 1: more evaluation -> more request coverage."""
        results = [CoverageReplayer(generated, k, seed=4).run().overall
                   for k in (0.05, 0.2, 1.0)]
        assert results[0] < results[1] < results[2]

    def test_full_coverage_is_high(self, generated):
        """Paper: implicit evaluation (k=100%) yields coverage above 80%."""
        series = CoverageReplayer(generated, 1.0).run()
        assert series.steady_state() > 0.7

    def test_low_coverage_is_small(self, generated):
        """Paper: at k=5% the request coverage is small."""
        series = CoverageReplayer(generated, 0.05).run()
        assert series.overall < 0.15

    def test_per_day_totals_match_trace(self, generated):
        series = CoverageReplayer(generated, 0.5).run()
        assert sum(point.total for point in series.points) == len(generated.trace)

    def test_deterministic_for_seed(self, generated):
        first = CoverageReplayer(generated, 0.2, seed=7).run()
        second = CoverageReplayer(generated, 0.2, seed=7).run()
        assert first.fractions() == second.fractions()

    def test_volume_edges_increase_coverage(self, generated):
        """Paper: download-volume relationships also increase coverage."""
        without = CoverageReplayer(generated, 0.1, seed=3).run().overall
        with_volume = CoverageReplayer(generated, 0.1, include_volume=True,
                                       seed=3).run().overall
        assert with_volume > without

    def test_user_edges_increase_coverage(self, generated):
        without = CoverageReplayer(generated, 0.1, seed=3).run().overall
        with_user = CoverageReplayer(generated, 0.1, include_user=True,
                                     rank_probability=0.3, seed=3).run().overall
        assert with_user > without


class TestSweep:
    def test_sweep_returns_one_series_per_coverage(self, generated):
        sweep = run_coverage_sweep(generated, [0.05, 0.2])
        assert [series.evaluation_coverage for series in sweep] == [0.05, 0.2]

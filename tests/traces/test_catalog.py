"""Tests for repro.traces.catalog."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.traces import FileCatalog, zipf_weights

DAY = 24 * 3600.0


class TestZipfWeights:
    def test_normalized(self):
        assert sum(zipf_weights(100, 0.8)) == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        weights = zipf_weights(50, 1.0)
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_exponent_zero_is_uniform(self):
        weights = zipf_weights(4, 0.0)
        assert all(w == pytest.approx(0.25) for w in weights)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            zipf_weights(0)
        with pytest.raises(ValueError):
            zipf_weights(10, -1.0)

    @given(n=st.integers(min_value=1, max_value=200),
           exponent=st.floats(min_value=0.0, max_value=2.0))
    def test_always_a_distribution(self, n, exponent):
        weights = zipf_weights(n, exponent)
        assert len(weights) == n
        assert sum(weights) == pytest.approx(1.0)
        assert all(w > 0 for w in weights)


class TestCatalogGeneration:
    @pytest.fixture
    def catalog(self):
        return FileCatalog.generate(200, random.Random(1), fake_ratio=0.3,
                                    trace_days=30.0)

    def test_size(self, catalog):
        assert len(catalog) == 200

    def test_fake_ratio_respected(self, catalog):
        assert len(catalog.fake_ids()) == 60
        assert len(catalog.real_ids()) == 140

    def test_fakes_have_low_quality_reals_high(self, catalog):
        for catalog_file in catalog:
            if catalog_file.is_fake:
                assert catalog_file.quality <= 0.2
            else:
                assert catalog_file.quality >= 0.75

    def test_most_popular_title_is_real(self, catalog):
        top = max(catalog, key=lambda f: f.popularity)
        assert not top.is_fake

    def test_fakes_shadow_popular_titles(self, catalog):
        """Pollution targets popular titles: the top half of the catalog by
        popularity must contain a large share of the fakes."""
        ranked = sorted(catalog, key=lambda f: -f.popularity)
        top_half = ranked[:len(ranked) // 2]
        fakes_in_top = sum(1 for f in top_half if f.is_fake)
        assert fakes_in_top >= len(catalog.fake_ids()) * 0.4

    def test_lifetimes_within_horizon(self, catalog):
        horizon = 30.0 * DAY
        for catalog_file in catalog:
            assert 0.0 <= catalog_file.birth_time <= horizon
            assert catalog_file.birth_time <= catalog_file.death_time <= horizon

    def test_deterministic_for_seed(self):
        a = FileCatalog.generate(50, random.Random(7))
        b = FileCatalog.generate(50, random.Random(7))
        assert [f.file_id for f in a] == [f.file_id for f in b]
        assert [f.size_bytes for f in a] == [f.size_bytes for f in b]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            FileCatalog.generate(0, random.Random(1))
        with pytest.raises(ValueError):
            FileCatalog.generate(10, random.Random(1), fake_ratio=1.5)

    def test_extreme_fake_ratios(self):
        all_fake = FileCatalog.generate(20, random.Random(1), fake_ratio=1.0)
        assert len(all_fake.fake_ids()) == 20
        no_fake = FileCatalog.generate(20, random.Random(1), fake_ratio=0.0)
        assert len(no_fake.fake_ids()) == 0


class TestCatalogQueries:
    @pytest.fixture
    def catalog(self):
        return FileCatalog.generate(100, random.Random(2), trace_days=30.0)

    def test_get_by_id(self, catalog):
        assert catalog.get("file-000000").file_id == "file-000000"

    def test_get_missing_raises(self, catalog):
        with pytest.raises(KeyError):
            catalog.get("nope")

    def test_alive_at_respects_lifetimes(self, catalog):
        timestamp = 15.0 * DAY
        for catalog_file in catalog.alive_at(timestamp):
            assert catalog_file.alive_at(timestamp)

    def test_sample_prefers_popular(self, catalog):
        rng = random.Random(3)
        counts = {}
        for catalog_file in catalog.sample(rng, k=3000):
            counts[catalog_file.file_id] = counts.get(catalog_file.file_id, 0) + 1
        # The most popular file must be sampled far more often than the
        # median file.
        top = max(catalog, key=lambda f: f.popularity)
        median_count = sorted(counts.values())[len(counts) // 2]
        assert counts.get(top.file_id, 0) > 3 * median_count

    def test_sample_restricted_to_alive(self, catalog):
        rng = random.Random(4)
        timestamp = 10.0 * DAY
        alive_ids = {f.file_id for f in catalog.alive_at(timestamp)}
        if alive_ids:
            sampled = catalog.sample(rng, timestamp=timestamp, k=50)
            assert all(f.file_id in alive_ids for f in sampled)

"""Tests for repro.traces.stats."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.traces import (DownloadRecord, DownloadTrace, compute_statistics,
                          gini_coefficient, zipf_exponent_fit)

DAY = 24 * 3600.0


class TestZipfFit:
    def test_perfect_zipf_recovered(self):
        counts = [round(1000 / rank) for rank in range(1, 50)]
        assert zipf_exponent_fit(counts) == pytest.approx(1.0, abs=0.05)

    def test_uniform_counts_give_zero_exponent(self):
        assert zipf_exponent_fit([10] * 20) == pytest.approx(0.0, abs=1e-9)

    def test_requires_two_positive_counts(self):
        with pytest.raises(ValueError):
            zipf_exponent_fit([5])
        with pytest.raises(ValueError):
            zipf_exponent_fit([0, 0])

    def test_ignores_zero_counts(self):
        counts = [100, 50, 0, 25, 0]
        assert zipf_exponent_fit(counts) > 0


class TestGini:
    def test_equal_distribution_is_zero(self):
        assert gini_coefficient([5.0] * 10) == pytest.approx(0.0, abs=1e-9)

    def test_total_concentration_approaches_one(self):
        values = [0.0] * 99 + [100.0]
        assert gini_coefficient(values) > 0.95

    def test_empty_and_zero_inputs(self):
        assert gini_coefficient([]) == 0.0
        assert gini_coefficient([0.0, 0.0]) == 0.0

    @given(values=st.lists(st.floats(min_value=0, max_value=1e6),
                           min_size=1, max_size=50))
    def test_range(self, values):
        assert 0.0 <= gini_coefficient(values) <= 1.0


class TestComputeStatistics:
    @pytest.fixture
    def trace(self):
        trace = DownloadTrace()
        for index in range(20):
            trace.append(DownloadRecord(
                uploader_id="seed", downloader_id=f"u{index % 5}",
                timestamp=index * 3600.0, content_hash=f"f{index % 3}",
                filename="x", size_bytes=10.0, is_fake=(index % 4 == 0)))
        return trace

    def test_counts(self, trace):
        statistics = compute_statistics(trace)
        assert statistics.num_records == 20
        assert statistics.num_users == 6  # 5 downloaders + seed
        assert statistics.num_files == 3

    def test_fake_fraction(self, trace):
        statistics = compute_statistics(trace)
        assert statistics.fake_download_fraction == pytest.approx(0.25)

    def test_downloads_per_day(self, trace):
        statistics = compute_statistics(trace)
        assert sum(statistics.downloads_per_day.values()) == 20

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            compute_statistics(DownloadTrace())

    def test_median_file_distinct_days_positive(self, trace):
        statistics = compute_statistics(trace)
        assert statistics.median_file_distinct_days >= 1.0

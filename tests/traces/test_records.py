"""Tests for repro.traces.records."""

import pytest

from repro.traces import DownloadRecord, DownloadTrace

DAY = 24 * 3600.0


def _record(uploader="u1", downloader="u2", timestamp=0.0, content="f1",
            is_fake=False, size=100.0):
    return DownloadRecord(uploader_id=uploader, downloader_id=downloader,
                          timestamp=timestamp, content_hash=content,
                          filename=f"{content}.dat", size_bytes=size,
                          is_fake=is_fake)


class TestDownloadRecord:
    def test_schema_fields_match_maze_log(self):
        """Section 3.2: uploader, downloader, time, content hash, filename."""
        record = _record()
        assert record.uploader_id == "u1"
        assert record.downloader_id == "u2"
        assert record.timestamp == 0.0
        assert record.content_hash == "f1"
        assert record.filename == "f1.dat"

    def test_self_download_rejected(self):
        with pytest.raises(ValueError):
            _record(uploader="u1", downloader="u1")

    def test_negative_timestamp_rejected(self):
        with pytest.raises(ValueError):
            _record(timestamp=-1.0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            _record(size=-5.0)

    def test_records_are_immutable(self):
        record = _record()
        with pytest.raises(AttributeError):
            record.timestamp = 5.0  # type: ignore[misc]


class TestDownloadTrace:
    @pytest.fixture
    def trace(self):
        trace = DownloadTrace()
        trace.append(_record("a", "b", 0.0, "f1"))
        trace.append(_record("b", "c", DAY, "f2", is_fake=True))
        trace.append(_record("a", "c", 2 * DAY, "f1"))
        return trace

    def test_users_sorted_union(self, trace):
        assert trace.users() == ["a", "b", "c"]

    def test_files_sorted(self, trace):
        assert trace.files() == ["f1", "f2"]

    def test_duration(self, trace):
        assert trace.duration() == pytest.approx(2 * DAY)

    def test_duration_of_empty_trace_is_zero(self):
        assert DownloadTrace().duration() == 0.0

    def test_downloads_and_uploads_of(self, trace):
        assert len(trace.downloads_of("c")) == 2
        assert len(trace.uploads_of("a")) == 2

    def test_fake_fraction(self, trace):
        assert trace.fake_fraction() == pytest.approx(1 / 3)

    def test_fake_fraction_empty_trace(self):
        assert DownloadTrace().fake_fraction() == 0.0

    def test_window_slices_half_open(self, trace):
        window = trace.window(0.0, DAY)
        assert len(window) == 1
        assert window[0].content_hash == "f1"

    def test_sort_by_time(self):
        trace = DownloadTrace()
        trace.append(_record("a", "b", 10.0))
        trace.append(_record("a", "b", 5.0, content="f2"))
        trace.sort_by_time()
        assert trace[0].timestamp == 5.0

    def test_extend_and_iter(self, trace):
        other = DownloadTrace()
        other.extend(trace)
        assert len(other) == len(trace)
        assert [r.content_hash for r in other] == ["f1", "f2", "f1"]

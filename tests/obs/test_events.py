"""Tests for the JSONL event trace and its loader."""

import pytest

from repro.obs.events import EventTrace, read_events


class TestEventTrace:
    def test_record_stamps_seq_t_event(self):
        trace = EventTrace()
        record = trace.record("download", 12.5, cls="honest")
        assert record == {"seq": 0, "t": 12.5, "event": "download",
                          "cls": "honest"}
        assert trace.record("request", 13.0)["seq"] == 1

    def test_reserved_fields_rejected(self):
        trace = EventTrace()
        # ``t`` collides with the positional parameter itself (TypeError);
        # ``seq`` and ``event`` are caught by the explicit guard.
        for reserved in ("seq", "t", "event"):
            with pytest.raises((ValueError, TypeError)):
                trace.record("x", 0.0, **{reserved: 1})

    def test_of_kind_and_kinds(self):
        trace = EventTrace()
        trace.record("a", 0.0)
        trace.record("b", 1.0)
        trace.record("a", 2.0)
        assert len(trace.of_kind("a")) == 2
        assert trace.kinds() == {"a": 2, "b": 1}

    def test_lines_are_canonical_json(self):
        trace = EventTrace()
        trace.record("download", 1.0, z_field=1, a_field=2)
        line = next(iter(trace.lines()))
        # Sorted keys, no whitespace: byte-stable across runs.
        assert line == ('{"a_field":2,"event":"download","seq":0,'
                        '"t":1.0,"z_field":1}')


class TestSpilledTrace:
    class _ListSink:
        def __init__(self):
            self.records = []

        def append(self, record):
            self.records.append(record)

    def test_records_stream_to_sink_not_buffer(self):
        sink = self._ListSink()
        trace = EventTrace(spill=sink)
        trace.record("a", 0.0)
        trace.record("b", 1.0, x=1)
        assert trace.spilled is True
        assert len(trace) == 2
        assert [r["event"] for r in sink.records] == ["a", "b"]
        assert trace._events == []

    def test_kind_counts_survive_spilling(self):
        trace = EventTrace(spill=self._ListSink())
        trace.record("a", 0.0)
        trace.record("a", 1.0)
        trace.record("b", 2.0)
        assert trace.kinds() == {"a": 2, "b": 1}

    def test_buffered_only_operations_raise(self):
        trace = EventTrace(spill=self._ListSink())
        trace.record("a", 0.0)
        for operation in (lambda: list(trace), lambda: trace.of_kind("a"),
                          lambda: list(trace.lines()),
                          lambda: trace.write("unused.jsonl")):
            with pytest.raises(ValueError, match="spills to a sink"):
                operation()


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        trace = EventTrace()
        trace.record("download", 1.0, cls="honest", fake=False)
        trace.record("request", 2.0, file="f-1")
        path = tmp_path / "events.jsonl"
        assert trace.write(str(path)) == 2
        events = list(read_events(str(path)))
        assert [e["event"] for e in events] == ["download", "request"]
        assert events[0]["fake"] is False

    def test_read_is_a_lazy_generator(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"event": "a", "seq": 0, "t": 0}\nnot json\n')
        events = read_events(str(path))
        # The good prefix streams out before the bad line is reached.
        assert next(events)["event"] == "a"
        with pytest.raises(ValueError, match="invalid JSON"):
            next(events)

    def test_read_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"event": "ok", "seq": 0, "t": 0}\nnot json\n')
        with pytest.raises(ValueError, match="invalid JSON"):
            list(read_events(str(path)))

    def test_read_rejects_non_event_record(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"seq": 0, "t": 0}\n')
        with pytest.raises(ValueError, match="not an event record"):
            list(read_events(str(path)))

    def test_read_skips_blank_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"event": "a", "seq": 0, "t": 0}\n\n')
        assert len(list(read_events(str(path)))) == 1

"""Tests for the labelled metrics registry."""

import pytest

from repro.obs.registry import (Counter, Gauge, Histogram, MetricsRegistry,
                                _key)


class TestInstruments:
    def test_counter_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_gauge_goes_both_ways(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(-3)
        assert gauge.value == 7

    def test_histogram_summary(self):
        histogram = Histogram()
        for value in [1.0, 2.0, 3.0]:
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == pytest.approx(6.0)
        assert histogram.summary()["p50"] == pytest.approx(2.0)


class TestKeying:
    def test_no_labels_is_bare_name(self):
        assert _key("downloads", {}) == "downloads"

    def test_labels_sorted(self):
        assert _key("downloads", {"cls": "honest", "a": "b"}) \
            == "downloads{a=b,cls=honest}"

    def test_same_labels_same_instrument(self):
        registry = MetricsRegistry()
        registry.counter("downloads", cls="honest").inc()
        registry.counter("downloads", cls="honest").inc()
        registry.counter("downloads", cls="polluter").inc()
        snapshot = registry.snapshot()
        assert snapshot["counters"]["downloads{cls=honest}"] == 2
        assert snapshot["counters"]["downloads{cls=polluter}"] == 1


class TestRegistry:
    def test_len_counts_all_instruments(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.gauge("b").set(1)
        registry.histogram("c").observe(1.0)
        assert len(registry) == 3

    def test_snapshot_keys_sorted(self):
        registry = MetricsRegistry()
        registry.counter("zz").inc()
        registry.counter("aa").inc()
        assert list(registry.snapshot()["counters"]) == ["aa", "zz"]

    def test_snapshot_is_json_serialisable(self):
        import json
        registry = MetricsRegistry()
        registry.counter("a", cls="x").inc(2)
        registry.gauge("b").set(0.5)
        registry.histogram("c").observe(1.5)
        text = json.dumps(registry.snapshot(), sort_keys=True)
        assert "a{cls=x}" in text

    def test_histogram_items_sorted(self):
        registry = MetricsRegistry()
        registry.histogram("z").observe(1.0)
        registry.histogram("a").observe(1.0)
        assert [key for key, _ in registry.histogram_items()] == ["a", "z"]

"""Tests for the pipeline bench snapshot: gate helpers and a tiny real run.

The full bench (5k/10k tiers) is CI territory; here a miniature
``collect_pipeline_snapshot`` run pins the snapshot's shape, and the gate
helpers (``sharded_speedup`` / ``scaling_identical`` / ``csr_speedup``)
are exercised against synthetic snapshots so every branch the CI gate
relies on is covered without waiting on a benchmark.
"""

import pytest

from repro.obs.bench_pipeline import (collect_pipeline_snapshot, csr_speedup,
                                      dense_speedup, incremental_speedup,
                                      scaling_identical, sharded_speedup)


@pytest.fixture(scope="module")
def snapshot():
    return collect_pipeline_snapshot(seed=5, sizes=(30,), events=3,
                                     scale_sizes=(40,), scale_events=2,
                                     shards=2, shard_workers=2)


class TestMiniatureRun:
    def test_refresh_tiers_present(self, snapshot):
        assert [tier["peers"] for tier in snapshot["refresh"]] == [30]
        assert incremental_speedup(snapshot, 30) > 0

    def test_csr_section_present(self, snapshot):
        csr = snapshot["csr"]
        assert csr["flavor"] in ("scipy", "blocked-numpy")
        assert csr["auto_selects"] == "csr"
        assert csr["results_max_abs_diff"] < 1e-9
        assert csr_speedup(snapshot) > 0

    def test_scaling_entries_are_bit_identical(self, snapshot):
        entries = snapshot["scaling"]
        assert [entry["peers"] for entry in entries] == [40]
        assert entries[0]["checksums_match"] is True
        # check_workers runs at the smallest tier: the worker-pool replay
        # must match the serial sharded path exactly.
        workers = entries[0]["workers"]
        assert workers["matches_serial"] is True
        assert scaling_identical(snapshot) is True
        assert sharded_speedup(snapshot, 40) > 0

    def test_dense_speedup_still_reported(self, snapshot):
        assert dense_speedup(snapshot) > 0

    def test_stamp_covers_scaling_knobs(self, snapshot):
        # The scaling knobs are part of the stamped config: a different
        # shard count or tier list must change the config hash.
        other = collect_pipeline_snapshot(seed=5, sizes=(30,), events=3,
                                          scale_sizes=(40,), scale_events=2,
                                          shards=4, shard_workers=2)
        assert snapshot["seed"] == 5
        assert other["config_hash"] != snapshot["config_hash"]


class TestGateHelpers:
    def test_sharded_speedup_unknown_tier_is_zero(self, snapshot):
        # A tier the bench never ran can't pass a >= bound: the helper
        # reports 0.0 so the CI gate fails closed instead of crashing.
        assert sharded_speedup(snapshot, 999) == 0.0

    def test_scaling_identical_requires_entries(self):
        assert scaling_identical({"scaling": []}) is False

    def test_scaling_identical_rejects_mismatch(self):
        snapshot = {"scaling": [{"peers": 10, "checksums_match": False}]}
        assert scaling_identical(snapshot) is False

    def test_scaling_identical_rejects_worker_mismatch(self):
        snapshot = {"scaling": [{
            "peers": 10, "checksums_match": True,
            "workers": {"workers": 2, "matches_serial": False},
        }]}
        assert scaling_identical(snapshot) is False

    def test_scaling_identical_accepts_serial_only_entries(self):
        snapshot = {"scaling": [{"peers": 10, "checksums_match": True}]}
        assert scaling_identical(snapshot) is True

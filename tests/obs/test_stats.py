"""Tests for the shared mean/percentile helpers."""

import pytest

from repro.obs.stats import (DEFAULT_QUANTILES, QuantileSketch,
                             RunningStats, mean, percentile,
                             percentiles, summarize)


class TestMean:
    def test_empty_is_zero(self):
        assert mean([]) == 0.0

    def test_simple_mean(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_accepts_generator(self):
        assert mean(float(x) for x in range(5)) == pytest.approx(2.0)


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 50.0) == 0.0

    def test_single_value(self):
        assert percentile([7.0], 99.0) == 7.0

    def test_median_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50.0) == pytest.approx(2.5)

    def test_extremes(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 100.0) == 5.0

    def test_does_not_mutate_input(self):
        values = [3.0, 1.0, 2.0]
        percentile(values, 50.0)
        assert values == [3.0, 1.0, 2.0]

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)
        with pytest.raises(ValueError):
            percentile([1.0], -1.0)


class TestPercentiles:
    def test_default_quantiles(self):
        result = percentiles([float(x) for x in range(1, 101)])
        assert set(result) == {"p50", "p95", "p99"}
        assert result["p50"] == pytest.approx(50.5)
        assert DEFAULT_QUANTILES == (50.0, 95.0, 99.0)

    def test_empty_gives_zeros(self):
        assert percentiles([]) == {"p50": 0.0, "p95": 0.0, "p99": 0.0}


class TestSummarize:
    def test_fields(self):
        summary = summarize([2.0, 4.0, 6.0])
        assert summary["count"] == 3
        assert summary["mean"] == pytest.approx(4.0)
        assert summary["min"] == 2.0
        assert summary["max"] == 6.0
        assert summary["p50"] == pytest.approx(4.0)

    def test_empty(self):
        summary = summarize([])
        assert summary["count"] == 0
        assert summary["mean"] == 0.0


class TestRunningStats:
    def test_empty_is_all_zero(self):
        stats = RunningStats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.min == 0.0
        assert stats.max == 0.0

    def test_tracks_count_mean_min_max(self):
        stats = RunningStats()
        for value in (4.0, 1.0, 7.0):
            stats.observe(value)
        assert stats.count == 3
        assert stats.mean == pytest.approx(4.0)
        assert stats.min == 1.0
        assert stats.max == 7.0

    def test_coerces_ints(self):
        stats = RunningStats()
        stats.observe(3)
        assert stats.max == 3.0


class TestQuantileSketchExactMode:
    def test_summary_identical_to_summarize_below_limit(self):
        values = [float((13 * i) % 101) for i in range(500)]
        sketch = QuantileSketch()
        for value in values:
            sketch.observe(value)
        assert sketch.is_exact
        assert sketch.summary() == summarize(values)

    def test_empty_summary_matches_summarize(self):
        assert QuantileSketch().summary() == summarize(())

    def test_percentile_matches_batch_helper(self):
        values = [1.0, 2.0, 3.0, 4.0]
        sketch = QuantileSketch()
        for value in values:
            sketch.observe(value)
        assert sketch.percentile(50.0) == percentile(values, 50.0)

    def test_rejects_out_of_range_percentile(self):
        with pytest.raises(ValueError):
            QuantileSketch().percentile(101.0)

    def test_rejects_degenerate_budgets(self):
        with pytest.raises(ValueError):
            QuantileSketch(exact_limit=1)
        with pytest.raises(ValueError):
            QuantileSketch(compressed_size=1)


class TestQuantileSketchCompressed:
    def _stream(self, n, seed=3):
        # A deterministic pseudo-random-ish stream with no RNG import.
        return [float((seed + 37 * i) % 9973) for i in range(n)]

    def _filled(self, n):
        sketch = QuantileSketch(exact_limit=256, compressed_size=64)
        for value in self._stream(n):
            sketch.observe(value)
        return sketch

    def test_compression_keeps_exact_count_mean_min_max(self):
        values = self._stream(5000)
        sketch = self._filled(5000)
        assert not sketch.is_exact
        assert sketch.count == 5000
        assert sketch.mean == pytest.approx(sum(values) / 5000)
        assert sketch.min == min(values)
        assert sketch.max == max(values)

    def test_percentiles_close_to_exact(self):
        values = self._stream(5000)
        sketch = self._filled(5000)
        span = max(values) - min(values)
        for q in (50.0, 95.0, 99.0):
            error = abs(sketch.percentile(q) - percentile(values, q))
            assert error <= 0.05 * span

    def test_deterministic_for_identical_streams(self):
        a, b = self._filled(5000), self._filled(5000)
        assert a.summary() == b.summary()

    def test_percentile_monotone_in_q(self):
        sketch = self._filled(5000)
        marks = [sketch.percentile(q) for q in
                 (0.0, 10.0, 50.0, 90.0, 99.0, 100.0)]
        assert marks == sorted(marks)
        assert marks[0] == sketch.min
        assert marks[-1] == sketch.max

    def test_memory_stays_bounded(self):
        sketch = self._filled(50000)
        assert len(sketch._centroids) <= sketch.compressed_size + 1
        assert len(sketch._buffer) < sketch.exact_limit


class TestQuantileSketchBoundary:
    """Behaviour at exactly the exact/compressed transition (4096)."""

    def _filled(self, n):
        sketch = QuantileSketch()  # default exact_limit=4096
        for i in range(n):
            sketch.observe(float((37 * i) % 8009))
        return sketch

    def test_one_below_limit_stays_exact(self):
        sketch = self._filled(4095)
        assert sketch.is_exact
        assert sketch.count == 4095

    def test_at_limit(self):
        values = [float((37 * i) % 8009) for i in range(4096)]
        sketch = self._filled(4096)
        assert sketch.count == 4096
        assert sketch.min == min(values)
        assert sketch.max == max(values)
        span = max(values) - min(values)
        for q in (50.0, 95.0, 99.0):
            assert abs(sketch.percentile(q)
                       - percentile(values, q)) <= 0.05 * span

    def test_one_past_limit_compresses_without_losing_aggregates(self):
        values = [float((37 * i) % 8009) for i in range(4097)]
        sketch = self._filled(4097)
        assert not sketch.is_exact
        assert sketch.count == 4097
        assert sketch.mean == pytest.approx(sum(values) / 4097)
        assert sketch.min == min(values)
        assert sketch.max == max(values)

    def test_crossing_the_limit_keeps_percentiles_continuous(self):
        values = [float((37 * i) % 8009) for i in range(4097)]
        before = self._filled(4095)
        after = self._filled(4097)
        span = max(values) - min(values)
        for q in (50.0, 95.0, 99.0):
            assert abs(after.percentile(q)
                       - before.percentile(q)) <= 0.05 * span


class TestQuantileSketchMerge:
    def test_merge_empty_is_noop(self):
        sketch = QuantileSketch()
        sketch.observe(1.0)
        summary = sketch.summary()
        assert sketch.merge(QuantileSketch()) is sketch
        assert sketch.summary() == summary

    def test_merge_into_empty(self):
        other = QuantileSketch()
        for value in (1.0, 2.0, 3.0):
            other.observe(value)
        sketch = QuantileSketch()
        sketch.merge(other)
        assert sketch.summary() == other.summary()

    def test_exact_merge_is_exact(self):
        a, b = QuantileSketch(), QuantileSketch()
        for i in range(100):
            a.observe(float(i))
        for i in range(100, 200):
            b.observe(float(i))
        a.merge(b)
        assert a.is_exact
        assert a.summary() == summarize([float(i) for i in range(200)])

    def test_merge_disjoint_compressed_streams(self):
        low = QuantileSketch(exact_limit=256, compressed_size=64)
        high = QuantileSketch(exact_limit=256, compressed_size=64)
        low_values = [float((37 * i) % 1000) for i in range(3000)]
        high_values = [5000.0 + float((41 * i) % 1000)
                       for i in range(3000)]
        for value in low_values:
            low.observe(value)
        for value in high_values:
            high.observe(value)
        low.merge(high)
        combined = low_values + high_values
        assert low.count == 6000
        assert low.mean == pytest.approx(sum(combined) / 6000)
        assert low.min == min(combined)
        assert low.max == max(combined)
        # The median sits in the gap between the two disjoint streams.
        span = max(combined) - min(combined)
        for q in (50.0, 95.0, 99.0):
            assert abs(low.percentile(q)
                       - percentile(combined, q)) <= 0.05 * span

    def test_merge_does_not_mutate_other(self):
        a, b = QuantileSketch(), QuantileSketch()
        for i in range(10):
            a.observe(float(i))
            b.observe(float(100 + i))
        before = b.summary()
        a.merge(b)
        assert b.summary() == before

"""Tests for the shared mean/percentile helpers."""

import pytest

from repro.obs.stats import (DEFAULT_QUANTILES, mean, percentile,
                             percentiles, summarize)


class TestMean:
    def test_empty_is_zero(self):
        assert mean([]) == 0.0

    def test_simple_mean(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_accepts_generator(self):
        assert mean(float(x) for x in range(5)) == pytest.approx(2.0)


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 50.0) == 0.0

    def test_single_value(self):
        assert percentile([7.0], 99.0) == 7.0

    def test_median_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50.0) == pytest.approx(2.5)

    def test_extremes(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 100.0) == 5.0

    def test_does_not_mutate_input(self):
        values = [3.0, 1.0, 2.0]
        percentile(values, 50.0)
        assert values == [3.0, 1.0, 2.0]

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)
        with pytest.raises(ValueError):
            percentile([1.0], -1.0)


class TestPercentiles:
    def test_default_quantiles(self):
        result = percentiles([float(x) for x in range(1, 101)])
        assert set(result) == {"p50", "p95", "p99"}
        assert result["p50"] == pytest.approx(50.5)
        assert DEFAULT_QUANTILES == (50.0, 95.0, 99.0)

    def test_empty_gives_zeros(self):
        assert percentiles([]) == {"p50": 0.0, "p95": 0.0, "p99": 0.0}


class TestSummarize:
    def test_fields(self):
        summary = summarize([2.0, 4.0, 6.0])
        assert summary["count"] == 3
        assert summary["mean"] == pytest.approx(4.0)
        assert summary["min"] == 2.0
        assert summary["max"] == 6.0
        assert summary["p50"] == pytest.approx(4.0)

    def test_empty(self):
        summary = summarize([])
        assert summary["count"] == 0
        assert summary["mean"] == 0.0

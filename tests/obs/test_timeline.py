"""Tests for per-peer reputation timelines."""

import pytest

from repro.obs.timeline import (PeerTimeline, build_timelines,
                                class_mean_series, fake_fraction_series)


def _snapshot(t, peer, cls="honest", **fields):
    defaults = dict(score=1.0, norm=0.5, service_class=2, bytes_up=0.0,
                    bytes_down=0.0, fakes_served=0, online=True)
    defaults.update(fields)
    return {"seq": 0, "t": t, "event": "reputation_snapshot", "peer": peer,
            "cls": cls, **defaults}


class TestBuildTimelines:
    def test_groups_samples_by_peer_in_time_order(self):
        events = [
            _snapshot(100.0, "a", norm=0.2),
            _snapshot(100.0, "b", cls="polluter", norm=0.9),
            _snapshot(200.0, "a", norm=0.4),
        ]
        timelines = build_timelines(events)
        assert sorted(timelines) == ["a", "b"]
        assert [s.t for s in timelines["a"].samples] == [100.0, 200.0]
        assert timelines["a"].last.norm == pytest.approx(0.4)
        assert timelines["b"].cls == "polluter"

    def test_ignores_other_event_kinds(self):
        events = [{"seq": 0, "t": 1.0, "event": "download", "peer": "a"}]
        assert build_timelines(events) == {}

    def test_series_extracts_one_attribute(self):
        events = [_snapshot(100.0, "a", bytes_up=10.0),
                  _snapshot(200.0, "a", bytes_up=30.0)]
        timeline = build_timelines(events)["a"]
        assert timeline.series("bytes_up") == [(100.0, 10.0), (200.0, 30.0)]

    def test_empty_timeline_has_no_last(self):
        with pytest.raises(ValueError, match="empty"):
            PeerTimeline(peer="x").last


class TestClassMeanSeries:
    def test_means_per_class_per_tick(self):
        events = [
            _snapshot(100.0, "a", cls="honest", norm=0.2),
            _snapshot(100.0, "b", cls="honest", norm=0.4),
            _snapshot(100.0, "p", cls="polluter", norm=0.8),
        ]
        series = class_mean_series(build_timelines(events))
        assert series["honest"] == [(100.0, pytest.approx(0.3))]
        assert series["polluter"] == [(100.0, pytest.approx(0.8))]

    def test_alternate_attribute(self):
        events = [_snapshot(100.0, "a", service_class=3)]
        series = class_mean_series(build_timelines(events),
                                   attribute="service_class")
        assert series["honest"] == [(100.0, 3.0)]


class TestFakeFractionSeries:
    def _download(self, t, fake):
        return {"seq": 0, "t": t, "event": "download", "fake": fake}

    def test_windows_fold_download_stream(self):
        window = 100.0
        events = [self._download(10.0, False), self._download(20.0, True),
                  self._download(150.0, True), self._download(160.0, True)]
        series = fake_fraction_series(events, window_seconds=window)
        assert series == [
            (100.0, pytest.approx(0.5), 2),
            (200.0, pytest.approx(1.0), 2),
        ]

    def test_validation(self):
        with pytest.raises(ValueError, match="window_seconds"):
            fake_fraction_series([], window_seconds=0.0)

"""Tests for the recorder facade and the null default."""

import json

from repro.obs.recorder import NULL_RECORDER, NullRecorder, Recorder


class TestNullRecorder:
    def test_disabled(self):
        assert NULL_RECORDER.enabled is False
        assert isinstance(NULL_RECORDER, NullRecorder)

    def test_all_calls_are_noops(self):
        recorder = NullRecorder()
        recorder.bind_clock(lambda: 1.0)
        recorder.event("x", t=1.0, field=2)
        recorder.inc("c")
        recorder.gauge("g", 1.0)
        recorder.observe("h", 1.0)
        with recorder.profile("phase"):
            pass

    def test_profile_reuses_one_timer(self):
        recorder = NullRecorder()
        assert recorder.profile("a") is recorder.profile("b")


class TestRecorder:
    def test_enabled(self):
        assert Recorder().enabled is True

    def test_event_uses_bound_clock(self):
        recorder = Recorder()
        now = [0.0]
        recorder.bind_clock(lambda: now[0])
        now[0] = 42.0
        recorder.event("tick")
        recorder.event("tock", t=7.0)
        events = list(recorder.trace)
        assert events[0]["t"] == 42.0
        assert events[1]["t"] == 7.0

    def test_metric_calls_reach_registry(self):
        recorder = Recorder()
        recorder.inc("c", 2, cls="honest")
        recorder.gauge("g", 0.5)
        recorder.observe("h", 3.0)
        snapshot = recorder.registry.snapshot()
        assert snapshot["counters"]["c{cls=honest}"] == 2
        assert snapshot["gauges"]["g"] == 0.5
        assert snapshot["histograms"]["h"]["count"] == 1

    def test_profile_times_phase(self):
        recorder = Recorder()
        with recorder.profile("phase"):
            pass
        assert recorder.profiler.phase("phase").calls == 1

    def test_subscribe_unsubscribe_lifecycle(self):
        recorder = Recorder()
        seen = []
        callback = seen.append
        recorder.subscribe(callback)
        recorder.event("a", t=0.0)
        recorder.unsubscribe(callback)
        recorder.event("b", t=1.0)
        assert [record["event"] for record in seen] == ["a"]
        # Detaching an unknown/already-removed callback is a no-op.
        recorder.unsubscribe(callback)
        recorder.unsubscribe(lambda record: None)
        # Re-subscribing resumes delivery.
        recorder.subscribe(callback)
        recorder.event("c", t=2.0)
        assert [record["event"] for record in seen] == ["a", "c"]

    def test_null_recorder_unsubscribe_is_noop(self):
        NULL_RECORDER.unsubscribe(lambda record: None)

    def test_trace_sink_spills_instead_of_buffering(self):
        sink_records = []

        class Sink:
            def append(self, record):
                sink_records.append(record)

        recorder = Recorder(trace_sink=Sink())
        recorder.event("a", t=0.0)
        recorder.event("b", t=1.0, x=2)
        assert recorder.trace.spilled is True
        assert len(recorder.trace) == 2
        assert [record["event"] for record in sink_records] == ["a", "b"]

    def test_write_artifacts(self, tmp_path):
        recorder = Recorder()
        recorder.event("a", t=1.0)
        recorder.inc("c")
        trace_path = tmp_path / "events.jsonl"
        metrics_path = tmp_path / "metrics.json"
        assert recorder.write_trace(str(trace_path)) == 1
        recorder.write_metrics(str(metrics_path))
        assert '"event":"a"' in trace_path.read_text()
        snapshot = json.loads(metrics_path.read_text())
        assert snapshot["counters"]["c"] == 1

"""Tests for repro.obs.spans: deterministic ids, nesting, causal links,
sampling, tree reconstruction, critical paths and the streaming analyzer."""

import pytest

from repro.obs import Recorder
from repro.obs.spans import (NULL_SPAN, SpanAnalyzer, SpanTreeBuilder,
                             critical_path, derive_span_id, derive_trace_id,
                             span_node_from_event)
from repro.simulator.engine import EventEngine


def make_recorder(sample=1, seed=42):
    recorder = Recorder(span_seed=seed, span_sample=sample)
    clock = [0.0]
    recorder.bind_clock(lambda: clock[0])
    return recorder, clock


def span_events(recorder):
    return [event for event in recorder.trace
            if event.get("event") == "span"]


class TestIdDerivation:
    def test_deterministic(self):
        assert derive_trace_id(7, 100.0, 1) == derive_trace_id(7, 100.0, 1)
        assert derive_span_id(123, 4) == derive_span_id(123, 4)

    def test_sensitive_to_every_input(self):
        base = derive_trace_id(7, 100.0, 1)
        assert derive_trace_id(8, 100.0, 1) != base
        assert derive_trace_id(7, 100.5, 1) != base
        assert derive_trace_id(7, 100.0, 2) != base

    def test_fits_signed_int64(self):
        for counter in range(1, 200):
            trace_id = derive_trace_id(3, float(counter), counter)
            assert 0 <= trace_id < 2 ** 63
            assert 0 <= derive_span_id(trace_id, counter) < 2 ** 63


class TestSpanEmission:
    def test_null_span_is_inert(self):
        with NULL_SPAN as span:
            span.add_cost(1.0)
            span.count("x")
            span.annotate(a=1)
        assert span.span_id is None
        assert not span.kept

    def test_request_span_null_when_disabled(self):
        recorder, _ = make_recorder(sample=0)
        assert recorder.request_span("op") is NULL_SPAN
        assert not recorder.spans_enabled

    def test_plain_span_still_profiles_when_disabled(self):
        recorder, _ = make_recorder(sample=0)
        with recorder.span("op"):
            pass
        assert recorder.profiler.phase("op").calls == 1
        assert span_events(recorder) == []

    def test_emits_record_with_ids_and_durations(self):
        recorder, clock = make_recorder()
        with recorder.span("op") as span:
            span.add_cost(2.5)
            clock[0] = 10.0
        (event,) = span_events(recorder)
        assert event["name"] == "op"
        assert event["t"] == 0.0
        assert event["t_end"] == 10.0
        assert event["dur"] == pytest.approx(2.5)
        assert event["busy"] == pytest.approx(2.5)
        assert event["span"] == span.span_id
        assert event["trace"] == span.trace_id
        assert "parent" not in event

    def test_nested_children_fold_into_parent_dur(self):
        recorder, _ = make_recorder()
        with recorder.span("outer") as outer:
            outer.add_cost(1.0)
            with recorder.span("inner") as inner:
                inner.add_cost(2.5)
        events = span_events(recorder)
        by_name = {event["name"]: event for event in events}
        assert by_name["inner"]["parent"] == by_name["outer"]["span"]
        assert by_name["inner"]["trace"] == by_name["outer"]["trace"]
        assert by_name["outer"]["dur"] == pytest.approx(3.5)
        assert by_name["outer"]["busy"] == pytest.approx(1.0)

    def test_counters_and_annotations_land_in_record(self):
        recorder, _ = make_recorder()
        with recorder.span("op", file="f1") as span:
            span.count("retries", 2)
            span.annotate(ok=False)
        (event,) = span_events(recorder)
        assert event["retries"] == 2
        assert event["ok"] is False
        assert event["file"] == "f1"

    def test_counters_merge_into_profiler(self):
        recorder, _ = make_recorder(sample=0)
        for _ in range(2):
            with recorder.span("op") as span:
                span.count("hops", 3)
        assert recorder.profiler.phase("op").counters == {"hops": 6}

    def test_byte_identical_across_recorders(self):
        def run():
            recorder, clock = make_recorder()
            for i in range(5):
                clock[0] = float(i)
                with recorder.span("op") as span:
                    span.add_cost(0.5 * i)
            return span_events(recorder)

        assert run() == run()

    def test_different_seed_changes_ids(self):
        def ids(seed):
            recorder, _ = make_recorder(seed=seed)
            with recorder.span("op"):
                pass
            return span_events(recorder)[0]["span"]

        assert ids(1) != ids(2)


class TestSampling:
    def test_keeps_every_nth_trace(self):
        recorder, _ = make_recorder(sample=2)
        for _ in range(4):
            with recorder.span("op"):
                pass
        assert len(span_events(recorder)) == 2

    def test_unkept_traces_still_tick_counters(self):
        full, _ = make_recorder(sample=1)
        sampled, _ = make_recorder(sample=4)
        for _ in range(4):
            with full.span("op"):
                pass
            with sampled.span("op"):
                pass
        full_ids = [event["span"] for event in span_events(full)]
        sampled_ids = [event["span"] for event in span_events(sampled)]
        # The kept trace's ids are identical under any sampling rate.
        assert sampled_ids == full_ids[:1]

    def test_unkept_spans_still_profile(self):
        recorder, _ = make_recorder(sample=100)
        for _ in range(5):
            with recorder.span("op"):
                pass
        assert recorder.profiler.phase("op").calls == 5
        assert len(span_events(recorder)) == 1


class TestEnginePropagation:
    def test_scheduled_callback_resumes_trace(self):
        recorder, clock = make_recorder()
        engine = EventEngine(recorder=recorder)
        clock_binder = engine  # engine drives sim time itself

        def completion(eng):
            with recorder.span("transfer") as span:
                span.add_cost(1.0)

        with recorder.span("request") as request_span:
            engine.schedule_at(5.0, completion)
            scheduling_span_id = request_span.span_id
            scheduling_trace = request_span.trace_id
        engine.run()
        by_name = {event["name"]: event
                   for event in span_events(recorder)}
        transfer = by_name["transfer"]
        # Same trace, linked (not parented) to the scheduling span.
        assert transfer["trace"] == scheduling_trace
        assert transfer["link"] == scheduling_span_id
        assert "parent" not in transfer
        # Linked segments are not folded into the scheduler's dur.
        assert by_name["request"]["dur"] == pytest.approx(0.0)
        assert clock_binder.now == 5.0

    def test_unsampled_schedule_has_no_link(self):
        recorder, _ = make_recorder(sample=2)
        engine = EventEngine(recorder=recorder)
        emitted = []

        def completion(eng):
            with recorder.span("work") as span:
                emitted.append(span.kept)

        # Second trace: dropped by 1-in-2 sampling.
        with recorder.span("kept-root"):
            pass
        with recorder.span("dropped-root"):
            engine.schedule_at(1.0, completion)
        engine.run()
        assert emitted == [False]


class TestTreeReconstruction:
    def _trace(self):
        recorder, clock = make_recorder()
        with recorder.span("root") as root:
            root.add_cost(1.0)
            with recorder.span("a") as a:
                a.add_cost(2.0)
            with recorder.span("b") as b:
                b.add_cost(3.0)
                with recorder.span("b1") as b1:
                    b1.add_cost(4.0)
        return list(recorder.trace)

    def test_builder_returns_completed_root(self):
        builder = SpanTreeBuilder()
        roots = [root for event in self._trace()
                 if (root := builder.feed(event)) is not None]
        assert len(roots) == 1
        root = roots[0]
        assert root.name == "root"
        assert [child.name for child in root.children] == ["a", "b"]
        assert root.dur == pytest.approx(10.0)
        assert root.consistent
        assert builder.finish() == []

    def test_orphans_drained_at_finish(self):
        events = [event for event in self._trace()
                  if event.get("name") != "root"]
        builder = SpanTreeBuilder()
        for event in events:
            assert builder.feed(event) is None
        orphans = builder.finish()
        assert sorted(node.name for node in orphans) == ["a", "b"]

    def test_malformed_span_counted_not_crashed(self):
        builder = SpanTreeBuilder()
        assert builder.feed({"event": "span", "name": "x"}) is None
        assert builder.malformed == 1
        assert builder.feed({"event": "download"}) is None
        assert builder.malformed == 1

    def test_critical_path_follows_max_dur_child(self):
        builder = SpanTreeBuilder()
        root = None
        for event in self._trace():
            root = builder.feed(event) or root
        names = [node.name for node in critical_path(root)]
        assert names == ["root", "b", "b1"]

    def test_span_node_from_event_roundtrip(self):
        recorder, _ = make_recorder()
        with recorder.span("op", color="red") as span:
            span.add_cost(1.0)
            span.count("hops", 2)
        node = span_node_from_event(span_events(recorder)[0])
        assert node.name == "op"
        assert node.fields["color"] == "red"
        assert node.fields["hops"] == 2
        assert node.busy == pytest.approx(1.0)


class TestSpanAnalyzer:
    def test_full_analysis(self):
        recorder, clock = make_recorder()
        engine = EventEngine(recorder=recorder)

        def completion(eng):
            with recorder.span("transfer") as span:
                span.add_cost(7.0)

        for i in range(3):
            with recorder.span("request") as span:
                span.add_cost(float(i + 1))
                engine.schedule_at(float(i + 1), completion)
        engine.run()

        analyzer = SpanAnalyzer()
        for event in recorder.trace:
            analyzer.feed(event)
        analysis = analyzer.finish()
        assert analysis.spans == 6
        assert analysis.traces == 3
        assert analysis.segments == 6
        assert analysis.orphans == 0
        assert analysis.inconsistent == 0
        assert analysis.operations["request"].count == 3
        assert analysis.operations["request"].total_dur == pytest.approx(6.0)
        # The exemplar critical path is the slowest root of each name.
        path = analysis.critical_paths["request"]
        assert path[0].dur == pytest.approx(3.0)
        document = analysis.to_dict()
        assert document["operations"]["transfer"]["p50"] == pytest.approx(7.0)

    def test_empty_trace(self):
        analysis = SpanAnalyzer().finish()
        assert analysis.spans == 0
        assert analysis.operations == {}
        assert analysis.critical_paths == {}

"""Tests for repro.obs.flame: folded stacks and SVG rendering."""

import pytest

from repro.obs import Recorder
from repro.obs.flame import (FoldedStacks, folded_from_trees,
                             render_flamegraph)
from repro.obs.spans import SpanNode, SpanTreeBuilder


def node(name, busy=0.0, children=()):
    return SpanNode(name=name, span_id=1, trace_id=1, parent_id=None,
                    link_id=None, t_begin=0.0, t_end=0.0,
                    dur=busy + sum(child.dur for child in children),
                    busy=busy, children=list(children))


class TestFoldedStacks:
    def test_folds_busy_cost_by_path(self):
        tree = node("root", busy=1.0, children=[
            node("a", busy=0.5),
            node("b", busy=0.25, children=[node("c", busy=0.125)]),
        ])
        folded = FoldedStacks()
        folded.add_tree(tree)
        assert folded.trees == 1
        assert dict(folded.items()) == {
            ("root",): 1.0,
            ("root", "a"): 0.5,
            ("root", "b"): 0.25,
            ("root", "b", "c"): 0.125,
        }
        assert folded.total == pytest.approx(1.875)

    def test_merges_identical_paths_across_trees(self):
        folded = folded_from_trees([node("op", busy=1.0),
                                    node("op", busy=2.0)])
        assert folded.trees == 2
        assert dict(folded.items()) == {("op",): 3.0}

    def test_zero_cost_paths_dropped(self):
        folded = folded_from_trees([node("free", busy=0.0)])
        assert len(folded) == 0
        assert folded.lines() == []

    def test_lines_are_integer_microseconds(self):
        folded = folded_from_trees([
            node("root", busy=0.5, children=[node("leaf", busy=1.5e-6)])])
        assert folded.lines() == ["root 500000", "root;leaf 2"]

    def test_sub_microsecond_lines_omitted(self):
        folded = folded_from_trees([node("tiny", busy=4e-7)])
        assert folded.lines() == []


class TestRenderFlamegraph:
    def _folded(self):
        return folded_from_trees([
            node("root", busy=1.0, children=[node("child", busy=3.0)])])

    def test_self_contained_svg(self):
        document = render_flamegraph(self._folded())
        assert document.startswith("<svg ")
        assert document.rstrip().endswith("</svg>")
        assert "http" not in document.replace(
            "http://www.w3.org/2000/svg", "")
        assert "root" in document and "child" in document
        assert "total busy 4.000000s" in document

    def test_deterministic(self):
        assert (render_flamegraph(self._folded())
                == render_flamegraph(self._folded()))

    def test_escapes_markup_in_names(self):
        folded = folded_from_trees([node('a<b>&"c', busy=1.0)])
        document = render_flamegraph(folded)
        assert "a<b>" not in document
        assert "a&lt;b&gt;&amp;&quot;c" in document

    def test_empty_folded_renders_placeholder(self):
        document = render_flamegraph(FoldedStacks())
        assert "no span cost recorded" in document
        assert document.rstrip().endswith("</svg>")

    def test_title_and_width_respected(self):
        document = render_flamegraph(self._folded(), title="my graph",
                                     width=800)
        assert "my graph" in document
        assert 'width="800"' in document


class TestEndToEnd:
    def test_recorder_trace_to_svg(self):
        recorder = Recorder(span_seed=3, span_sample=1)
        clock = [0.0]
        recorder.bind_clock(lambda: clock[0])
        with recorder.span("request") as outer:
            outer.add_cost(0.25)
            with recorder.span("lookup") as inner:
                inner.add_cost(0.75)
        builder = SpanTreeBuilder()
        folded = FoldedStacks()
        for event in recorder.trace:
            root = builder.feed(event)
            if root is not None:
                folded.add_tree(root)
        assert folded.lines() == ["request 250000", "request;lookup 750000"]
        document = render_flamegraph(folded)
        assert "request" in document and "lookup" in document

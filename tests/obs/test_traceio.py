"""Tests for the chunked binary columnar trace format."""

import json
import struct

import pytest

from repro.obs.events import EventTrace
from repro.obs.traceio import (DEFAULT_CHUNK_EVENTS, HEADER_SIZE,
                               TRACE_MAGIC, JsonlTraceWriter,
                               TraceFormatError, TraceReader, TraceWriter,
                               canonical_line, decode_chunk, encode_chunk,
                               is_binary_trace, iter_trace_events,
                               open_trace_sink, trace_header, trace_info)


def _event(seq, kind, t, **fields):
    return {"seq": seq, "t": t, "event": kind, **fields}


def _sample_events():
    return [
        _event(0, "download", 1.5, cls="honest", wait=10.0, fake=False),
        _event(1, "request", 2.0, cls="polluter", file="f-1"),
        _event(2, "download", 3.25, cls="honest", wait=20.5, fake=True),
        _event(3, "dht_lookup", 4.0, hops=3, retries=0, ok=True),
        _event(4, "maintenance", 5.0, detail=None),
    ]


def _write(path, events, chunk_events=DEFAULT_CHUNK_EVENTS):
    with TraceWriter(path, chunk_events=chunk_events) as writer:
        writer.extend(events)
    return writer


class TestRoundTrip:
    def test_events_round_trip_exactly(self, tmp_path):
        events = _sample_events()
        path = tmp_path / "trace.bin"
        _write(path, events)
        with TraceReader(path) as reader:
            assert list(reader) == events

    def test_types_survive(self, tmp_path):
        events = [_event(0, "mix", 1.0,
                         an_int=7, a_float=7.0, a_bool=True,
                         a_str="x", none_field=None,
                         big_int=1 << 70, unicode_field="héllo ☃",
                         nested={"a": [1, 2]})]
        path = tmp_path / "trace.bin"
        _write(path, events)
        (decoded,) = list(iter_trace_events(path))
        assert decoded == events[0]
        # Exact types, not JSON-ish lookalikes.
        assert type(decoded["an_int"]) is int
        assert type(decoded["a_float"]) is float
        assert type(decoded["a_bool"]) is bool
        assert decoded["big_int"] == 1 << 70

    def test_mixed_type_column_falls_back_to_json(self, tmp_path):
        events = [_event(0, "a", 1.0, x=1),
                  _event(1, "a", 2.0, x="one"),
                  _event(2, "a", 3.0, x=2.5)]
        path = tmp_path / "trace.bin"
        _write(path, events)
        assert list(iter_trace_events(path)) == events

    def test_sparse_columns_round_trip(self, tmp_path):
        events = [_event(0, "a", 1.0, only_here="yes"),
                  _event(1, "b", 2.0),
                  _event(2, "a", 3.0, other=4)]
        path = tmp_path / "trace.bin"
        _write(path, events)
        assert list(iter_trace_events(path)) == events

    def test_canonical_reexport_is_byte_identical(self, tmp_path):
        trace = EventTrace()
        trace.record("download", 1.0, cls="honest", wait=3.5, fake=False)
        trace.record("request", 2.0, file="f-1")
        jsonl = tmp_path / "direct.jsonl"
        trace.write(str(jsonl))
        binary = tmp_path / "trace.bin"
        _write(binary, list(trace))
        recovered = "".join(canonical_line(event) + "\n"
                            for event in iter_trace_events(binary))
        assert recovered == jsonl.read_text()


class TestChunking:
    def test_small_chunks_cut_multiple_frames(self, tmp_path):
        events = [_event(i, "tick", float(i)) for i in range(10)]
        path = tmp_path / "trace.bin"
        writer = _write(path, events, chunk_events=3)
        assert writer.events_written == 10
        assert writer.chunks_written == 4  # 3+3+3+1
        assert list(iter_trace_events(path)) == events

    def test_flush_on_close_only(self, tmp_path):
        path = tmp_path / "trace.bin"
        writer = TraceWriter(path, chunk_events=100)
        writer.append(_event(0, "a", 1.0))
        assert writer.chunks_written == 0
        writer.close()
        assert writer.chunks_written == 1
        assert writer.events_written == 1

    def test_append_after_close_raises(self, tmp_path):
        writer = TraceWriter(tmp_path / "trace.bin")
        writer.close()
        with pytest.raises(ValueError, match="closed"):
            writer.append(_event(0, "a", 1.0))

    def test_close_is_idempotent(self, tmp_path):
        writer = TraceWriter(tmp_path / "trace.bin")
        writer.close()
        writer.close()

    def test_rejects_bad_chunk_events(self, tmp_path):
        with pytest.raises(ValueError, match="chunk_events"):
            TraceWriter(tmp_path / "trace.bin", chunk_events=0)

    def test_empty_trace_is_just_the_header(self, tmp_path):
        path = tmp_path / "trace.bin"
        _write(path, [])
        assert path.read_bytes() == trace_header()
        assert list(iter_trace_events(path)) == []


class TestEncodeChunk:
    def test_deterministic_bytes(self):
        events = _sample_events()
        assert encode_chunk(events) == encode_chunk(list(events))

    def test_empty_chunk_rejected(self):
        with pytest.raises(ValueError, match="empty chunk"):
            encode_chunk([])


class TestChunkBatch:
    def _batch(self):
        frame = encode_chunk(_sample_events())
        return decode_chunk(frame[8:])  # skip the 8-byte frame prefix

    def test_kind_counts(self):
        assert self._batch().kind_counts() == {
            "dht_lookup": 1, "download": 2, "maintenance": 1, "request": 1}

    def test_kinds_in_event_order(self):
        assert self._batch().kinds == [
            "download", "request", "download", "dht_lookup", "maintenance"]

    def test_column_values(self):
        batch = self._batch()
        assert list(batch.column_values("wait")) == [10.0, 20.5]
        assert list(batch.column_values("hops")) == [3]
        assert batch.column_values("no_such_column") == ()

    def test_column_indexes_align_with_values(self):
        batch = self._batch()
        wait = batch.columns["wait"]
        assert list(wait.indexes) == [0, 2]
        dense = batch.columns["t"]
        assert list(dense.indexes) == [0, 1, 2, 3, 4]

    def test_values_decode_lazily(self):
        batch = self._batch()
        column = batch.columns["cls"]
        assert column._values is None
        assert list(column.values) == ["honest", "polluter", "honest"]
        assert column._values is not None

    def test_events_view_matches_input(self):
        assert self._batch().events() == _sample_events()


class TestCorruption:
    def _valid(self, tmp_path):
        path = tmp_path / "trace.bin"
        _write(path, _sample_events(), chunk_events=2)
        return path

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "foreign.bin"
        path.write_bytes(b"NOTATRCE" + b"\x00" * 16)
        with pytest.raises(TraceFormatError, match="bad magic"):
            TraceReader(path)

    def test_short_header_rejected(self, tmp_path):
        path = tmp_path / "short.bin"
        path.write_bytes(TRACE_MAGIC[:4])
        with pytest.raises(TraceFormatError, match="short header"):
            TraceReader(path)

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "future.bin"
        header = bytearray(trace_header())
        header[8] = 99  # version little-endian low byte
        path.write_bytes(bytes(header))
        with pytest.raises(TraceFormatError, match="version"):
            TraceReader(path)

    def test_torn_frame_raises_after_valid_prefix(self, tmp_path):
        path = self._valid(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[:-5])  # tear the last frame's body
        events = []
        with TraceReader(path) as reader, \
                pytest.raises(TraceFormatError, match="torn frame"):
            for event in reader:
                events.append(event)
        # Everything before the torn frame was already yielded.
        assert events == _sample_events()[:4]

    def test_crc_mismatch_detected(self, tmp_path):
        path = self._valid(tmp_path)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip a bit in the final chunk body
        path.write_bytes(bytes(data))
        with pytest.raises(TraceFormatError, match="CRC mismatch"):
            list(TraceReader(path))

    def test_implausible_frame_length_rejected(self, tmp_path):
        path = tmp_path / "huge.bin"
        path.write_bytes(trace_header()
                         + struct.pack("<II", 1 << 30, 0) + b"x")
        with pytest.raises(TraceFormatError, match="implausible"):
            list(TraceReader(path))


class TestSinkDispatchAndSniffing:
    def test_open_trace_sink_picks_format_by_extension(self, tmp_path):
        assert isinstance(open_trace_sink(tmp_path / "a.bin"), TraceWriter)
        assert isinstance(open_trace_sink(tmp_path / "a.trc"), TraceWriter)
        assert isinstance(open_trace_sink(tmp_path / "a.jsonl"),
                          JsonlTraceWriter)

    def test_jsonl_writer_streams_canonical_lines(self, tmp_path):
        path = tmp_path / "a.jsonl"
        with JsonlTraceWriter(path) as writer:
            writer.append(_event(0, "a", 1.0, z=1, b=2))
        assert path.read_text() == \
            '{"b":2,"event":"a","seq":0,"t":1.0,"z":1}\n'
        assert writer.events_written == 1

    def test_is_binary_trace_sniffs_bytes_not_extension(self, tmp_path):
        binary_named_jsonl = tmp_path / "actually_binary.jsonl"
        _write(binary_named_jsonl, [_event(0, "a", 1.0)])
        assert is_binary_trace(binary_named_jsonl) is True
        jsonl_named_bin = tmp_path / "actually_jsonl.bin"
        jsonl_named_bin.write_text('{"event":"a","seq":0,"t":1.0}\n')
        assert is_binary_trace(jsonl_named_bin) is False
        assert is_binary_trace(tmp_path / "absent") is False

    def test_iter_trace_events_reads_both_formats(self, tmp_path):
        events = _sample_events()
        binary = tmp_path / "a.bin"
        _write(binary, events)
        jsonl = tmp_path / "a.jsonl"
        jsonl.write_text("".join(canonical_line(event) + "\n"
                                 for event in events))
        assert list(iter_trace_events(binary)) == events
        assert list(iter_trace_events(jsonl)) == events


class TestTraceInfo:
    def test_binary_layout(self, tmp_path):
        path = tmp_path / "a.bin"
        _write(path, _sample_events(), chunk_events=2)
        info = trace_info(path)
        assert info["format"] == "binary"
        assert info["version"] == 1
        assert info["events"] == 5
        assert info["chunks"] == 3
        assert info["kinds"]["download"] == 2
        assert info["start_time"] == 1.5
        assert info["end_time"] == 5.0
        assert info["truncated"] is False
        assert info["error"] is None

    def test_jsonl_layout(self, tmp_path):
        path = tmp_path / "a.jsonl"
        path.write_text("".join(canonical_line(event) + "\n"
                                for event in _sample_events()))
        info = trace_info(path)
        assert info["format"] == "jsonl"
        assert "version" not in info
        assert info["events"] == 5
        assert info["kinds"]["request"] == 1

    def test_truncated_binary_keeps_valid_prefix(self, tmp_path):
        path = tmp_path / "a.bin"
        _write(path, _sample_events(), chunk_events=2)
        path.write_bytes(path.read_bytes()[:-5])
        info = trace_info(path)
        assert info["truncated"] is True
        assert "torn frame" in info["error"]
        assert info["events"] == 4  # the two intact chunks
        assert info["chunks"] == 2

    def test_empty_file_counts_nothing(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        info = trace_info(path)
        assert info["events"] == 0
        assert info["start_time"] == 0.0

    def test_header_size_constant(self):
        assert len(trace_header()) == HEADER_SIZE == 12


class TestBenchHelpers:
    def test_small_snapshot_end_to_end(self, tmp_path):
        from repro.obs.bench_trace import (collect_trace_snapshot,
                                           synthetic_events)
        events = list(synthetic_events(500, seed=3))
        assert len(events) == 500
        assert events == list(synthetic_events(500, seed=3))
        snapshot = collect_trace_snapshot(events=500, seed=3,
                                          chunk_events=128,
                                          workdir=str(tmp_path))
        assert snapshot["events"] == 500
        assert snapshot["scan_aggregates_match"] is True
        assert snapshot["roundtrip_identical"] is True
        assert snapshot["binary"]["file_bytes"] > 0
        assert snapshot["size_ratio"] > 0

    def test_synthetic_events_exercise_every_column_type(self):
        from repro.obs.bench_trace import synthetic_events
        events = list(synthetic_events(2000, seed=3))
        kinds = {event["event"] for event in events}
        assert {"download", "request", "dht_lookup",
                "reputation_snapshot", "multitrust_iteration",
                "maintenance"} <= kinds
        assert any(event.get("detail") is None for event in events
                   if event["event"] == "maintenance")

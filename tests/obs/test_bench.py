"""Tests for the stamped perf-snapshot machinery."""

import json

from repro.obs.bench import (collect_snapshot, config_hash, git_sha,
                             run_stamp, write_snapshot)


class TestStamp:
    def test_config_hash_stable_and_order_free(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})
        assert len(config_hash({"a": 1})) == 12
        assert config_hash({"a": 1}) != config_hash({"a": 2})

    def test_git_sha_in_this_checkout(self):
        sha = git_sha()
        assert sha == "unknown" or len(sha) == 40

    def test_run_stamp_fields(self):
        stamp = run_stamp(7, {"x": 1})
        assert stamp["seed"] == 7
        assert stamp["schema"] == 1
        assert stamp["config_hash"] == config_hash({"x": 1})


class TestSnapshot:
    def test_collect_and_write(self, tmp_path):
        snapshot = collect_snapshot(seed=5)
        assert snapshot["simulate"]["matches_null_recorder_run"] is True
        assert snapshot["simulate"]["events_recorded"] > 0
        assert snapshot["chaos"]["retrievals"] > 0
        assert "engine.run" in snapshot["profiler"]["simulate"]
        path = tmp_path / "BENCH_obs.json"
        write_snapshot(str(path), snapshot)
        loaded = json.loads(path.read_text())
        assert loaded["seed"] == 5
        assert "instrumentation_overhead_ratio" in loaded["timings"]

"""Tests for differential trace analysis."""

import pytest

from repro.obs.diff import diff_summaries
from repro.obs.report import summarize_trace


def _event(kind, t, **fields):
    return {"seq": 0, "t": t, "event": kind, **fields}


def _downloads(count, fakes, cls="honest", wait=10.0):
    events = []
    for i in range(count):
        events.append(_event("download", float(i), cls=cls,
                             wait=wait, fake=i < fakes))
    return events


class TestDiffSummaries:
    def test_identical_traces_have_no_regressions(self):
        events = _downloads(20, 2)
        diff = diff_summaries(summarize_trace(events),
                              summarize_trace(events))
        assert diff["regressions"] == []
        assert diff["deltas"]["total_events"] == 0
        assert diff["deltas"]["event_counts"] == {}

    def test_fake_fraction_rise_is_a_regression(self):
        a = summarize_trace(_downloads(20, 2))
        b = summarize_trace(_downloads(20, 10))
        diff = diff_summaries(a, b)
        assert diff["deltas"]["fake_fraction_by_class"]["honest"] \
            == pytest.approx(0.4)
        assert any("fake fraction" in r for r in diff["regressions"])

    def test_small_drift_tolerated(self):
        a = summarize_trace(_downloads(100, 10))
        b = summarize_trace(_downloads(100, 12))
        assert diff_summaries(a, b)["regressions"] == []

    def test_improvement_is_not_a_regression(self):
        a = summarize_trace(_downloads(20, 10))
        b = summarize_trace(_downloads(20, 2))
        assert diff_summaries(a, b)["regressions"] == []

    def test_wait_blowup_flagged(self):
        a = summarize_trace(_downloads(20, 0, wait=10.0))
        b = summarize_trace(_downloads(20, 0, wait=30.0))
        diff = diff_summaries(a, b)
        assert any("wait p95" in r for r in diff["regressions"])

    def test_dht_health_regressions(self):
        a = summarize_trace([
            _event("dht_lookup", 1.0, hops=3, retries=0, ok=True),
            _event("dht_retrieve", 2.0, complete=True)])
        b = summarize_trace([
            _event("dht_lookup", 1.0, hops=9, retries=2, ok=False),
            _event("dht_retrieve", 2.0, complete=False)])
        diff = diff_summaries(a, b)
        assert diff["deltas"]["dht_failed_lookups"] == 1
        assert diff["deltas"]["dht_retrievals_incomplete"] == 1
        assert diff["deltas"]["dht_mean_hops"] == pytest.approx(6.0)
        assert any("failed DHT lookups" in r for r in diff["regressions"])
        assert any("incomplete" in r for r in diff["regressions"])

    def test_new_warning_alerts_flagged(self):
        a = summarize_trace([_event("request", 1.0, cls="honest")])
        b = summarize_trace([
            _event("alert", 1.0, detector="d", severity="warning",
                   message="m")])
        diff = diff_summaries(a, b)
        assert diff["deltas"]["alert_counts"]["warning"] == 1
        assert any("warning alerts" in r for r in diff["regressions"])

    def test_info_alerts_are_not_regressions(self):
        a = summarize_trace([_event("request", 1.0, cls="honest")])
        b = summarize_trace([
            _event("alert", 1.0, detector="d", severity="info",
                   message="m")])
        assert diff_summaries(a, b)["regressions"] == []

    def test_worsening_convergence_flagged(self):
        a = summarize_trace([
            _event("multitrust_iteration", 1.0, iteration=2, residual=0.1),
            _event("multitrust_iteration", 1.0, iteration=3,
                   residual=1e-4)])
        b = summarize_trace([
            _event("multitrust_iteration", 1.0, iteration=2, residual=0.1),
            _event("multitrust_iteration", 1.0, iteration=3, residual=0.05)])
        diff = diff_summaries(a, b)
        assert any("residual" in r for r in diff["regressions"])

    def test_labels_and_summaries_embedded(self):
        events = _downloads(5, 0)
        diff = diff_summaries(summarize_trace(events),
                              summarize_trace(events),
                              label_a="main", label_b="branch")
        assert diff["a"]["label"] == "main"
        assert diff["b"]["label"] == "branch"
        assert diff["a"]["summary"]["total_events"] == 5

"""Tests for the streaming anomaly detectors."""

from repro.obs.detectors import (CollusionRingDetector,
                                 ConvergenceStallDetector,
                                 FakeOutbreakDetector, StarvationDetector,
                                 WhitewashDetector, default_detectors)


def _event(kind, t, **fields):
    return {"seq": 0, "t": t, "event": kind, **fields}


def _feed(detector, events, finish_t=None):
    alerts = []
    for event in events:
        alerts.extend(detector.observe(event))
    if finish_t is None:
        finish_t = max((e["t"] for e in events), default=0.0)
    alerts.extend(detector.finish(finish_t))
    return alerts


class TestConvergenceStall:
    def test_shrinking_residuals_are_quiet(self):
        events = [
            _event("multitrust_iteration", 10.0, iteration=2, residual=0.4),
            _event("multitrust_iteration", 10.0, iteration=3, residual=0.1),
            _event("multitrust_iteration", 10.0, iteration=4,
                   residual=0.001),
        ]
        assert _feed(ConvergenceStallDetector(), events) == []

    def test_stalled_residual_alerts(self):
        events = [
            _event("multitrust_iteration", 10.0, iteration=2, residual=0.4),
            _event("multitrust_iteration", 10.0, iteration=3, residual=0.39),
        ]
        alerts = _feed(ConvergenceStallDetector(), events)
        assert len(alerts) == 1
        assert alerts[0].detector == "convergence_stall"
        assert "stalled" in alerts[0].message

    def test_converged_low_residual_never_alerts(self):
        events = [
            _event("multitrust_iteration", 10.0, iteration=2,
                   residual=0.005),
            _event("multitrust_iteration", 10.0, iteration=3,
                   residual=0.005),
        ]
        assert _feed(ConvergenceStallDetector(), events) == []

    def test_new_computation_closes_previous_run(self):
        detector = ConvergenceStallDetector()
        stalled = [
            _event("multitrust_iteration", 10.0, iteration=2, residual=0.4),
            _event("multitrust_iteration", 10.0, iteration=3, residual=0.4),
        ]
        for event in stalled:
            assert detector.observe(event) == []
        # Next refresh restarts at iteration 2 -> the stalled run closes.
        alerts = detector.observe(
            _event("multitrust_iteration", 20.0, iteration=2, residual=0.3))
        assert len(alerts) == 1

    def test_single_step_runs_are_ignored(self):
        events = [
            _event("multitrust_iteration", 10.0, iteration=2, residual=0.9)]
        assert _feed(ConvergenceStallDetector(), events) == []


class TestFakeOutbreak:
    WINDOW = 6 * 3600.0

    def _downloads(self, t0, total, fakes):
        events = []
        for i in range(total):
            events.append(_event("download", t0 + i, fake=i < fakes))
        return events

    def test_quiet_when_fraction_low(self):
        events = self._downloads(0.0, 20, 2)
        assert _feed(FakeOutbreakDetector(), events) == []

    def test_critical_without_baseline(self):
        events = self._downloads(0.0, 10, 8)
        alerts = _feed(FakeOutbreakDetector(), events)
        assert len(alerts) == 1
        assert alerts[0].severity == "critical"

    def test_spike_over_baseline_warns(self):
        events = (self._downloads(0.0, 20, 1)
                  + self._downloads(self.WINDOW, 20, 2)
                  + self._downloads(2 * self.WINDOW, 20, 8))
        alerts = _feed(FakeOutbreakDetector(), events)
        assert len(alerts) == 1
        assert alerts[0].severity == "warning"
        assert "baseline" in alerts[0].message

    def test_sparse_windows_ignored(self):
        events = self._downloads(0.0, 3, 3)  # below min_downloads
        assert _feed(FakeOutbreakDetector(), events) == []


def _edges(t, pairs):
    return [_event("trust_edge", t, src=src, dst=dst, value=value)
            for src, dst, value in pairs]


class TestCollusionRing:
    def _clique(self, members, value=0.3):
        pairs = []
        for a in members:
            for b in members:
                if a != b:
                    pairs.append((a, b, value))
        return pairs

    def test_unvalidated_clique_alerts(self):
        pairs = self._clique(["c1", "c2", "c3"])
        # Members also trust an outsider a little; nobody trusts them back.
        pairs += [("c1", "h1", 0.05), ("h1", "h2", 0.4), ("h2", "h1", 0.4)]
        alerts = _feed(CollusionRingDetector(), _edges(100.0, pairs))
        assert len(alerts) == 1
        assert alerts[0].severity == "critical"
        assert "c1, c2, c3" in alerts[0].message

    def test_externally_validated_clique_is_innocent(self):
        pairs = self._clique(["h1", "h2", "h3"])
        # Outsiders place more trust in the clique than it holds itself.
        pairs += [("o1", "h1", 1.0), ("o2", "h2", 1.0), ("o3", "h3", 1.0)]
        assert _feed(CollusionRingDetector(), _edges(100.0, pairs)) == []

    def test_sparse_component_is_innocent(self):
        # A chain of mutual edges is connected but nowhere near a clique.
        members = [f"p{i}" for i in range(8)]
        pairs = []
        for a, b in zip(members, members[1:]):
            pairs += [(a, b, 0.3), (b, a, 0.3)]
        assert _feed(CollusionRingDetector(), _edges(100.0, pairs)) == []

    def test_each_ring_reported_once(self):
        pairs = self._clique(["c1", "c2", "c3"])
        detector = CollusionRingDetector()
        alerts = _feed(detector, _edges(100.0, pairs), finish_t=100.0)
        assert len(alerts) == 1
        # The same membership in a later snapshot stays silent.
        alerts = []
        for event in _edges(200.0, pairs):
            alerts.extend(detector.observe(event))
        alerts.extend(detector.finish(200.0))
        assert alerts == []

    def test_small_groups_ignored(self):
        pairs = self._clique(["c1", "c2"])
        assert _feed(CollusionRingDetector(), _edges(100.0, pairs)) == []


class TestWhitewash:
    def test_whitewash_event_raises_info(self):
        alerts = WhitewashDetector().observe(
            _event("whitewash", 50.0, retired="w-0", fresh="w-0-w1"))
        assert [a.severity for a in alerts] == ["info"]
        assert "w-0-w1" in alerts[0].message

    def test_reset_above_prior_warns_once(self):
        detector = WhitewashDetector(newcomer_prior=0.5)
        detector.observe(
            _event("whitewash", 50.0, retired="w-0", fresh="w-0-w1"))
        quiet = detector.observe(_event(
            "reputation_snapshot", 60.0, peer="w-0-w1", norm=0.2))
        assert quiet == []
        alerts = detector.observe(_event(
            "reputation_snapshot", 70.0, peer="w-0-w1", norm=0.8))
        assert [a.severity for a in alerts] == ["warning"]
        again = detector.observe(_event(
            "reputation_snapshot", 80.0, peer="w-0-w1", norm=0.9))
        assert again == []

    def test_unrelated_high_reputation_is_fine(self):
        alerts = WhitewashDetector().observe(_event(
            "reputation_snapshot", 60.0, peer="honest-1", norm=0.9))
        assert alerts == []

    def test_rejoin_abuse_threshold(self):
        detector = WhitewashDetector(rejoin_threshold=3)
        alerts = []
        for t in (10.0, 20.0, 30.0, 40.0):
            alerts.extend(detector.observe(
                _event("churn_rejoin", t, peer="p-1")))
        assert len(alerts) == 1
        assert "3 times" in alerts[0].message

    def test_dht_rejoin_counts_by_user_field(self):
        detector = WhitewashDetector(rejoin_threshold=2)
        detector.observe(
            _event("dht_node_join", 1.0, user="u-1", rejoined=True))
        # First joins never count.
        detector.observe(
            _event("dht_node_join", 2.0, user="u-2", rejoined=False))
        alerts = detector.observe(
            _event("dht_node_join", 3.0, user="u-1", rejoined=True))
        assert len(alerts) == 1
        assert "u-1" in alerts[0].message


def _snapshot(t, peer, cls, service_class, norm=0.1):
    return _event("reputation_snapshot", t, peer=peer, cls=cls,
                  service_class=service_class, norm=norm, online=True)


class TestStarvation:
    def test_honest_peer_stuck_at_zero_warns_once(self):
        detector = StarvationDetector(consecutive_refreshes=3)
        alerts = []
        for tick in range(5):
            t = (tick + 1) * 100.0
            alerts.extend(detector.observe(_snapshot(t, "h-1", "honest", 0)))
            alerts.extend(detector.observe(_snapshot(t, "h-2", "honest", 3)))
        alerts.extend(detector.finish(500.0))
        assert len(alerts) == 1
        assert "h-1" in alerts[0].message

    def test_no_alert_without_differentiation(self):
        # Everyone is in class 0: the incentive layer isn't differentiating,
        # so nobody is being starved relative to anyone else.
        detector = StarvationDetector(consecutive_refreshes=2)
        alerts = []
        for tick in range(4):
            t = (tick + 1) * 100.0
            alerts.extend(detector.observe(_snapshot(t, "h-1", "honest", 0)))
            alerts.extend(detector.observe(_snapshot(t, "h-2", "honest", 0)))
        alerts.extend(detector.finish(400.0))
        assert alerts == []

    def test_freerider_in_class_zero_is_working_as_intended(self):
        detector = StarvationDetector(consecutive_refreshes=2)
        alerts = []
        for tick in range(4):
            t = (tick + 1) * 100.0
            alerts.extend(detector.observe(
                _snapshot(t, "f-1", "freerider", 0)))
            alerts.extend(detector.observe(_snapshot(t, "h-1", "honest", 3)))
        alerts.extend(detector.finish(400.0))
        assert alerts == []

    def test_recovery_resets_streak(self):
        detector = StarvationDetector(consecutive_refreshes=3)
        alerts = []
        classes = [0, 0, 2, 0, 0]  # never 3 consecutive zeros
        for tick, service_class in enumerate(classes):
            t = (tick + 1) * 100.0
            alerts.extend(detector.observe(
                _snapshot(t, "h-1", "honest", service_class)))
            alerts.extend(detector.observe(_snapshot(t, "h-2", "honest", 3)))
        alerts.extend(detector.finish(500.0))
        assert alerts == []


class TestDefaultSet:
    def test_catalogue_is_complete(self):
        names = {d.name for d in default_detectors()}
        assert names == {"convergence_stall", "fake_outbreak",
                         "collusion_ring", "whitewash",
                         "incentive_starvation"}

"""Tests for trace summarisation behind ``repro report``."""

import pytest

from repro.obs.report import (TraceSummarizer, summarize_trace,
                              summary_to_dict)


def _event(kind, t, **fields):
    return {"seq": 0, "t": t, "event": kind, **fields}


class TestSummarizeTrace:
    def test_accepts_a_one_shot_generator(self):
        summary = summarize_trace(
            _event("request", float(i)) for i in range(10))
        assert summary.total_events == 10
        assert summary.end_time == 9.0

    def test_feed_matches_batch(self):
        events = [
            _event("download", 1.0, cls="honest", wait=10.0, fake=False),
            _event("dht_lookup", 2.0, hops=3, retries=1, ok=True)]
        summarizer = TraceSummarizer()
        for event in events:
            summarizer.feed(event)
        assert summarizer.finish() == summarize_trace(events)

    def test_empty_trace(self):
        summary = summarize_trace([])
        assert summary.total_events == 0
        assert summary.event_counts == {}
        assert summary.dht_failed_lookups == 0

    def test_counts_and_span(self):
        summary = summarize_trace([
            _event("request", 5.0), _event("request", 40.0),
            _event("maintenance", 10.0)])
        assert summary.total_events == 3
        assert summary.start_time == 5.0
        assert summary.end_time == 40.0
        assert summary.event_counts == {"maintenance": 1, "request": 2}

    def test_per_class_waits_and_outcomes(self):
        summary = summarize_trace([
            _event("download", 1.0, cls="honest", wait=10.0, fake=False),
            _event("download", 2.0, cls="honest", wait=30.0, fake=True),
            _event("blocked_fake", 3.0, cls="honest"),
            _event("download", 4.0, cls="polluter", wait=50.0, fake=False)])
        honest = summary.wait_by_class["honest"]
        assert honest["count"] == 2
        assert honest["p50"] == pytest.approx(20.0)
        assert summary.outcomes_by_class["honest"] == {
            "downloads": 2, "fakes": 1, "blocked": 1}
        assert summary.outcomes_by_class["polluter"]["downloads"] == 1

    def test_multitrust_residuals_grouped_by_iteration(self):
        summary = summarize_trace([
            _event("multitrust_iteration", 0.0, iteration=2, residual=0.2),
            _event("multitrust_iteration", 1.0, iteration=2, residual=0.4),
            _event("multitrust_iteration", 1.0, iteration=3, residual=0.1)])
        assert summary.multitrust_residuals[2]["count"] == 2
        assert summary.multitrust_residuals[2]["mean"] == pytest.approx(0.3)
        assert summary.multitrust_residuals[3]["max"] == pytest.approx(0.1)

    def test_dht_lookup_stats(self):
        summary = summarize_trace([
            _event("dht_lookup", 0.0, hops=3, retries=0, ok=True),
            _event("dht_lookup", 1.0, hops=5, retries=2, ok=False)])
        assert summary.dht_hops["count"] == 2
        assert summary.dht_hops["max"] == 5.0
        assert summary.dht_retries["mean"] == pytest.approx(1.0)
        assert summary.dht_failed_lookups == 1

    def test_fake_removal_latency(self):
        summary = summarize_trace([
            _event("fake_removal", 10.0, latency=100.0),
            _event("fake_removal", 20.0, latency=300.0)])
        assert summary.fake_removal_latency["mean"] == pytest.approx(200.0)

    def test_ignores_malformed_fields(self):
        summary = summarize_trace([
            _event("multitrust_iteration", 0.0, iteration=2, residual=None),
            _event("fake_removal", 0.0, latency=None),
            {"event": "download"}])
        assert summary.multitrust_residuals == {}
        assert summary.fake_removal_latency["count"] == 0
        assert summary.wait_by_class["unknown"]["count"] == 1


class TestUnrecognizedBucket:
    def test_unknown_kinds_counted_not_dropped(self):
        summary = summarize_trace([
            _event("request", 1.0, cls="honest"),
            _event("martian_probe", 2.0),
            _event("martian_probe", 3.0),
            _event("telemetry_v2", 4.0)])
        assert summary.unrecognized == {"martian_probe": 2,
                                        "telemetry_v2": 1}
        # They still count toward totals and the event table.
        assert summary.total_events == 4
        assert summary.event_counts["martian_probe"] == 2

    def test_known_kinds_stay_out_of_the_bucket(self):
        summary = summarize_trace([
            _event("reputation_snapshot", 1.0, peer="a"),
            _event("trust_edge", 1.0, src="a", dst="b", value=0.5),
            _event("alert", 1.0, detector="d", severity="info",
                   message="m"),
            _event("dht_node_join", 1.0, user="a", rejoined=False)])
        assert summary.unrecognized == {}


class TestAlertAndRetrievalCounts:
    def test_alert_severities_counted(self):
        summary = summarize_trace([
            _event("alert", 1.0, detector="d", severity="critical",
                   message="m"),
            _event("alert", 2.0, detector="d", severity="critical",
                   message="m"),
            _event("alert", 3.0, detector="d", severity="info",
                   message="m")])
        assert summary.alert_counts == {"critical": 2, "info": 1}

    def test_retrieval_quorum_accounting(self):
        summary = summarize_trace([
            _event("dht_retrieve", 1.0, complete=True),
            _event("dht_retrieve", 2.0, complete=False),
            _event("dht_retrieve", 3.0, complete=False)])
        assert summary.dht_retrievals == 3
        assert summary.dht_retrievals_incomplete == 2


class TestSummaryToDict:
    def test_layout_is_machine_readable(self):
        summary = summarize_trace([
            _event("download", 1.0, cls="honest", wait=10.0, fake=False),
            _event("multitrust_iteration", 2.0, iteration=2, residual=0.1),
            _event("mystery", 3.0),
            _event("alert", 4.0, detector="d", severity="warning",
                   message="m")])
        document = summary_to_dict(summary)
        assert document["schema"] == 2
        assert document["total_events"] == 4
        assert document["unrecognized"] == {"mystery": 1}
        assert document["alert_counts"] == {"warning": 1}
        # Iteration keys become strings so the document is JSON-clean.
        assert document["multitrust_residuals"]["2"]["count"] == 1
        assert document["dht"]["failed_lookups"] == 0
        assert document["profile"] == {}

    def test_profile_section_carried_through(self):
        summary = summarize_trace([])
        phases = {"simulate.run": {"calls": 3, "p95_seconds": 0.25}}
        document = summary_to_dict(summary, profile=phases)
        assert document["profile"]["simulate.run"]["p95_seconds"] == 0.25

    def test_round_trips_through_json(self):
        import json
        summary = summarize_trace([
            _event("download", 1.0, cls="honest", wait=10.0, fake=True)])
        encoded = json.dumps(summary_to_dict(summary), sort_keys=True)
        assert json.loads(encoded)["total_events"] == 1

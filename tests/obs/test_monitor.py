"""Tests for the streaming monitor: live/offline agreement and the
scenario-level detector firing the tentpole promises."""

import pytest

from repro.baselines import MultiDimensionalMechanism
from repro.core import ReputationConfig
from repro.obs import Monitor, MonitorResult, Recorder, monitor_events
from repro.obs.alerts import Alert
from repro.obs.recorder import NULL_RECORDER
from repro.simulator import (FileSharingSimulation, ScenarioSpec,
                             SimulationConfig)

_DAY = 86400.0


def _event(kind, t, **fields):
    return {"seq": 0, "t": t, "event": kind, **fields}


def _run_monitored(seed=5):
    """One small collusion+whitewash simulation with a live monitor."""
    config = SimulationConfig(
        scenario=ScenarioSpec(honest=20, colluders=5, clique_size=5,
                              whitewashers=1, free_riders=4),
        duration_seconds=1.5 * _DAY, num_files=80, fake_ratio=0.25,
        request_rate=0.03, seed=seed)
    mechanism = MultiDimensionalMechanism(ReputationConfig(
        retention_saturation_seconds=config.duration_seconds / 3))
    recorder = Recorder()
    monitor = Monitor.default().attach(recorder)
    FileSharingSimulation(config, mechanism, recorder=recorder).run()
    monitor.finish()
    return recorder, monitor


@pytest.fixture(scope="module")
def monitored_run():
    return _run_monitored()


class TestLiveMonitoring:
    def test_alerts_interleave_into_the_trace(self, monitored_run):
        recorder, monitor = monitored_run
        recorded = [e for e in recorder.trace if e["event"] == "alert"]
        assert len(recorded) == len(monitor.alerts)
        assert [Alert.from_event(e) for e in recorded] == monitor.alerts

    def test_collusion_ring_detector_fires_on_colluders(self, monitored_run):
        _, monitor = monitored_run
        rings = [a for a in monitor.alerts
                 if a.detector == "collusion_ring"]
        assert rings, "collusion scenario must trigger the ring detector"
        assert all(a.severity == "critical" for a in rings)
        # Every flagged member really is a colluder: no honest peer is
        # ever named in a ring alert.
        assert all("honest" not in a.message for a in rings)
        assert any("colluder" in a.message for a in rings)

    def test_whitewash_detector_fires_on_identity_shedding(
            self, monitored_run):
        _, monitor = monitored_run
        washes = [a for a in monitor.alerts if a.detector == "whitewash"]
        assert any("identity shed" in a.message for a in washes)

    def test_finish_is_idempotent(self, monitored_run):
        _, monitor = monitored_run
        assert monitor.finish() == []


class TestOfflineReplay:
    def test_replay_reproduces_live_alerts_exactly(self, monitored_run):
        recorder, monitor = monitored_run
        result = monitor_events(list(recorder.trace))
        assert result.recorded_alerts == monitor.alerts
        assert result.alerts == monitor.alerts
        assert result.reproduces_recorded

    def test_two_runs_at_same_seed_agree(self, monitored_run):
        _, first = monitored_run
        _, second = _run_monitored()
        assert first.alerts == second.alerts

    def test_unmonitored_trace_is_vacuously_reproduced(self):
        result = monitor_events([_event("request", 1.0, cls="honest")])
        assert result.recorded_alerts == []
        assert result.reproduces_recorded
        assert result.events_seen == 1


class TestMonitorMechanics:
    def test_alert_events_are_not_fed_to_detectors(self):
        monitor = Monitor.default()
        raised = monitor.feed(_event("alert", 1.0, detector="x",
                                     severity="critical", message="m"))
        assert raised == []
        assert monitor.alerts == []

    def test_no_reemission_without_recorder(self):
        monitor = Monitor.default()
        for t in range(5):
            monitor.feed(_event("dht_lookup", float(t * 50), hops=3,
                                ok=False))
        assert monitor.alerts, "rule should fire"

    def test_attach_to_null_recorder_swallows_reemission(self):
        # NullRecorder.subscribe is a no-op; feeding still works directly.
        monitor = Monitor.default().attach(NULL_RECORDER)
        monitor.feed(_event("whitewash", 1.0, retired="a", fresh="b"))
        assert len(monitor.alerts) == 1

    def test_counts_by_severity_sorted_by_escalation(self):
        result = MonitorResult(alerts=[
            Alert(t=1.0, detector="d", severity="critical", message="m"),
            Alert(t=2.0, detector="d", severity="info", message="m"),
            Alert(t=3.0, detector="d", severity="info", message="m"),
        ])
        assert list(result.counts_by_severity().items()) == [
            ("info", 2), ("critical", 1)]

    def test_divergent_replay_detected(self):
        # A trace claiming an alert the detectors never raise.
        events = [
            _event("request", 1.0, cls="honest"),
            _event("alert", 2.0, detector="ghost", severity="critical",
                   message="not reproducible"),
        ]
        result = monitor_events(events)
        assert result.recorded_alerts and not result.alerts
        assert not result.reproduces_recorded

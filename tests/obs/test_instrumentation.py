"""Integration tests: the recorder wired through core, simulator and DHT.

The two properties the whole layer stands on:

* the default ``NULL_RECORDER`` leaves every result identical to the
  uninstrumented path;
* a live :class:`Recorder` at the same seed produces byte-identical trace
  and metrics artefacts across runs.
"""

import pytest

from repro.core import ReputationConfig
from repro.core.matrix import TrustMatrix
from repro.core.multitrust import (compute_reputation_matrix,
                                   convergence_residuals, matrix_residual)
from repro.obs import NULL_RECORDER, Recorder
from repro.simulator import (ChaosConfig, FileSharingSimulation,
                             ScenarioSpec, SimulationConfig, run_chaos_point)
from repro.simulator.metrics import SimulationMetrics

DAY = 24 * 3600.0


def _chain_matrix():
    matrix = TrustMatrix()
    matrix.set("a", "b", 1.0)
    matrix.set("b", "c", 0.5)
    matrix.set("b", "d", 0.5)
    matrix.set("c", "d", 1.0)
    return matrix


def _sim_config(**overrides):
    defaults = dict(
        scenario=ScenarioSpec(honest=8, free_riders=2, polluters=2),
        duration_seconds=0.25 * DAY,
        num_files=30,
        request_rate=0.02,
        seed=5,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestMultitrustInstrumentation:
    def test_disabled_path_matches_fast_power(self):
        matrix = _chain_matrix()
        config = ReputationConfig(multitrust_steps=3)
        plain = compute_reputation_matrix(matrix, config=config)
        assert plain.get("a", "d") == matrix.power(3).get("a", "d")

    def test_enabled_path_emits_residual_events(self):
        recorder = Recorder()
        config = ReputationConfig(multitrust_steps=3)
        result = compute_reputation_matrix(_chain_matrix(), config=config,
                                           recorder=recorder)
        events = recorder.trace.of_kind("multitrust_iteration")
        assert [event["iteration"] for event in events] == [2, 3]
        assert all(event["residual"] >= 0.0 for event in events)
        # Same matrix out as the fast path (exact here: chain matmul
        # associates identically for this sparsity pattern).
        assert result.get("a", "d") == pytest.approx(
            _chain_matrix().power(3).get("a", "d"))
        snapshot = recorder.registry.snapshot()
        assert snapshot["counters"]["multitrust.computations"] == 1
        assert snapshot["histograms"]["multitrust.residual"]["count"] == 2
        assert recorder.profiler.phase("multitrust.power").calls == 1

    def test_single_step_emits_no_iterations(self):
        recorder = Recorder()
        compute_reputation_matrix(_chain_matrix(),
                                  config=ReputationConfig(),
                                  recorder=recorder)
        assert recorder.trace.of_kind("multitrust_iteration") == []

    def test_matrix_residual_is_linf_over_union(self):
        previous, current = TrustMatrix(), TrustMatrix()
        previous.set("a", "b", 0.5)
        previous.set("a", "c", 0.2)  # vanishes in current
        current.set("a", "b", 0.6)
        current.set("x", "y", 0.05)  # new in current
        assert matrix_residual(previous, current) == pytest.approx(0.2)

    def test_convergence_residuals_match_events(self):
        matrix = _chain_matrix()
        recorder = Recorder()
        compute_reputation_matrix(
            matrix, config=ReputationConfig(multitrust_steps=4),
            recorder=recorder)
        expected = convergence_residuals(matrix, 4)
        events = recorder.trace.of_kind("multitrust_iteration")
        assert [(e["iteration"], e["residual"]) for e in events] == expected


class TestMetricsExport:
    def test_null_recorder_export_is_noop(self):
        metrics = SimulationMetrics()
        metrics.record_request()
        metrics.export(NULL_RECORDER)  # must not raise

    def test_export_feeds_registry(self):
        metrics = SimulationMetrics()
        metrics.record_request()
        metrics.record_download("honest", False, 1000.0, 5.0, 200.0)
        metrics.record_blocked_fake("honest")
        metrics.record_retrieval(True, lookup_hops=3)
        metrics.record_retrieval(False, lookup_hops=5)
        recorder = Recorder()
        metrics.export(recorder)
        snapshot = recorder.registry.snapshot()
        assert snapshot["counters"]["sim.requests.total"] == 1
        assert snapshot["counters"]["sim.downloads.real{cls=honest}"] == 1
        assert snapshot["counters"]["sim.fakes.blocked{cls=honest}"] == 1
        assert snapshot["counters"]["dht.retrievals.incomplete"] == 1
        assert snapshot["histograms"]["sim.wait_seconds{cls=honest}"][
            "count"] == 1
        assert snapshot["histograms"]["dht.lookup.hops"]["count"] == 2

    def test_retrievals_incomplete_complements_availability(self):
        metrics = SimulationMetrics()
        for complete in (True, True, False):
            metrics.record_retrieval(complete)
        assert metrics.retrievals_incomplete == 1
        assert metrics.availability == pytest.approx(2 / 3)

    def test_fake_removal_returns_latency(self):
        metrics = SimulationMetrics()
        metrics.record_fake_copy("f", "p", 10.0)
        assert metrics.record_fake_removal("f", "p", 25.0) == 15.0
        assert metrics.record_fake_removal("f", "p", 30.0) is None
        assert metrics.outstanding_fake_copies == 0


class TestSimulationInstrumentation:
    def test_recorder_does_not_change_outcomes(self):
        plain = FileSharingSimulation(_sim_config()).run()
        recorder = Recorder()
        instrumented = FileSharingSimulation(
            _sim_config(), recorder=recorder).run()
        assert instrumented.total_requests == plain.total_requests
        assert instrumented.overall_fake_fraction \
            == plain.overall_fake_fraction

    def test_trace_covers_the_run(self):
        recorder = Recorder()
        FileSharingSimulation(_sim_config(), recorder=recorder).run()
        kinds = recorder.trace.kinds()
        assert kinds["request"] > 0
        assert kinds["download"] > 0
        assert kinds["peer_join"] == 12
        downloads = recorder.trace.of_kind("download")
        assert all(event["t"] >= 0.0 for event in downloads)
        assert recorder.profiler.phase("engine.run").calls == 1

    def test_trace_deterministic_across_runs(self):
        def lines():
            recorder = Recorder()
            FileSharingSimulation(_sim_config(), recorder=recorder).run()
            return list(recorder.trace.lines()), \
                recorder.registry.snapshot()
        assert lines() == lines()


class TestChaosInstrumentation:
    CONFIG = ChaosConfig(peers=12, files=16, rounds=8, loss_rate=0.1,
                         churn_rate=0.4, seed=3)

    def test_recorder_does_not_change_outcomes(self):
        plain = run_chaos_point(self.CONFIG)
        instrumented = run_chaos_point(self.CONFIG, recorder=Recorder())
        assert instrumented.availability == plain.availability
        assert instrumented.mean_hops == plain.mean_hops
        assert instrumented.retrievals_incomplete \
            == plain.retrievals_incomplete

    def test_trace_covers_the_cell(self):
        recorder = Recorder()
        run_chaos_point(self.CONFIG, recorder=recorder)
        kinds = recorder.trace.kinds()
        assert kinds["chaos_cell_start"] == 1
        assert kinds["chaos_cell_end"] == 1
        assert kinds["dht_lookup"] > 0
        assert kinds["dht_publish"] > 0
        assert kinds["dht_retrieve"] > 0
        snapshot = recorder.registry.snapshot()
        assert snapshot["counters"]["dht.lookups"] > 0
        assert snapshot["histograms"]["dht.lookup.hops"]["count"] > 0

    def test_trace_deterministic_across_runs(self):
        def lines():
            recorder = Recorder()
            run_chaos_point(self.CONFIG, recorder=recorder)
            return list(recorder.trace.lines()), \
                recorder.registry.snapshot()
        assert lines() == lines()

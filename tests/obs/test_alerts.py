"""Tests for alerts and the declarative rules engine."""

import pytest

from repro.obs.alerts import (Alert, RulesEngine, Severity, ThresholdRule,
                              WindowedCountRule, default_rules)


def _event(kind, t, **fields):
    return {"seq": 0, "t": t, "event": kind, **fields}


class TestAlert:
    def test_round_trips_through_event_fields(self):
        alert = Alert(t=5.0, detector="x", severity="warning", message="m")
        event = {"event": "alert", "t": 5.0, **alert.to_fields()}
        assert Alert.from_event(event) == alert

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError, match="severity"):
            Alert(t=0.0, detector="x", severity="fatal", message="m")

    def test_severity_rank_orders_escalation(self):
        assert (Severity.rank("info") < Severity.rank("warning")
                < Severity.rank("critical"))


class TestThresholdRule:
    def test_fires_above_bound(self):
        rule = ThresholdRule(name="hops", event_kind="dht_lookup",
                             field_name="hops", op=">", bound=10.0)
        assert rule.evaluate(_event("dht_lookup", 1.0, hops=11)) is not None
        assert rule.evaluate(_event("dht_lookup", 1.0, hops=10)) is None

    def test_ignores_other_kinds_and_missing_fields(self):
        rule = ThresholdRule(name="hops", event_kind="dht_lookup",
                             field_name="hops", op=">", bound=10.0)
        assert rule.evaluate(_event("download", 1.0, hops=99)) is None
        assert rule.evaluate(_event("dht_lookup", 1.0)) is None
        assert rule.evaluate(_event("dht_lookup", 1.0, hops="many")) is None

    def test_where_predicate_filters(self):
        rule = ThresholdRule(name="r", event_kind="dht_lookup",
                             field_name="hops", op=">=", bound=1.0,
                             where=lambda e: not e.get("ok", True))
        assert rule.evaluate(_event("dht_lookup", 1.0, hops=5,
                                    ok=True)) is None
        assert rule.evaluate(_event("dht_lookup", 1.0, hops=5,
                                    ok=False)) is not None

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="op"):
            ThresholdRule(name="r", event_kind="x", field_name="f",
                          op="!=", bound=0.0)


class TestWindowedCountRule:
    def _rule(self, **kwargs):
        defaults = dict(name="burst", event_kind="dht_lookup",
                        window_seconds=100.0, min_count=3)
        defaults.update(kwargs)
        return WindowedCountRule(**defaults)

    def test_fires_when_burst_fills_window(self):
        rule = self._rule()
        assert rule.evaluate(_event("dht_lookup", 10.0)) is None
        assert rule.evaluate(_event("dht_lookup", 20.0)) is None
        alert = rule.evaluate(_event("dht_lookup", 30.0))
        assert alert is not None
        assert alert.t == 30.0

    def test_spread_out_events_never_fire(self):
        rule = self._rule()
        for t in (0.0, 200.0, 400.0, 600.0):
            assert rule.evaluate(_event("dht_lookup", t)) is None

    def test_sustained_burst_alerts_once_per_window(self):
        rule = self._rule()
        alerts = [rule.evaluate(_event("dht_lookup", float(t)))
                  for t in range(0, 300, 10)]
        fired = [a for a in alerts if a is not None]
        # 30 events over 300s with a 100s mute: roughly one per window.
        assert 2 <= len(fired) <= 3

    def test_validation(self):
        with pytest.raises(ValueError, match="window"):
            self._rule(window_seconds=0.0)
        with pytest.raises(ValueError, match="min_count"):
            self._rule(min_count=0)


class TestRulesEngine:
    def test_evaluates_rules_in_order(self):
        engine = RulesEngine([
            ThresholdRule(name="a", event_kind="x", field_name="v",
                          op=">", bound=0.0),
            ThresholdRule(name="b", event_kind="x", field_name="v",
                          op=">", bound=0.0),
        ])
        alerts = engine.observe(_event("x", 1.0, v=1))
        assert [a.detector for a in alerts] == ["rule:a", "rule:b"]

    def test_default_rules_catch_failed_lookup_burst(self):
        engine = RulesEngine(default_rules())
        alerts = []
        for t in range(5):
            alerts.extend(engine.observe(
                _event("dht_lookup", float(t * 50), hops=3, ok=False)))
        assert any(a.detector == "rule:lookup_failure_burst"
                   for a in alerts)

    def test_default_rules_ignore_healthy_lookups(self):
        engine = RulesEngine(default_rules())
        alerts = []
        for t in range(20):
            alerts.extend(engine.observe(
                _event("dht_lookup", float(t * 50), hops=3, ok=True)))
        assert alerts == []

"""Tests for repro.analysis.convergence."""

import pytest

from repro.analysis import (ordering_convergence, reach_by_step,
                            steps_to_converge)
from repro.core import TrustMatrix


@pytest.fixture
def chain():
    """a -> b -> c -> d: each power reaches exactly one tier."""
    return TrustMatrix({"a": {"b": 1.0}, "b": {"c": 1.0}, "c": {"d": 1.0}})


@pytest.fixture
def dense_ring():
    """Everyone trusts everyone (uniform): converged from step one."""
    ids = [f"n{i}" for i in range(4)]
    matrix = TrustMatrix()
    for i in ids:
        for j in ids:
            if i != j:
                matrix.set(i, j, 1.0)
    return matrix.row_normalized()


class TestReachByStep:
    def test_chain_reach_is_tier_count(self, chain):
        fractions = reach_by_step(chain, max_steps=3)
        # 4 nodes -> 12 ordered pairs; step n reaches the pairs at distance
        # exactly n along the chain: 3, then 2, then 1.
        assert fractions[0] == pytest.approx(3 / 12)
        assert fractions[1] == pytest.approx(2 / 12)
        assert fractions[2] == pytest.approx(1 / 12)

    def test_dense_ring_reaches_everything_at_step_one(self, dense_ring):
        fractions = reach_by_step(dense_ring, max_steps=2)
        assert fractions[0] == pytest.approx(1.0)

    def test_validation(self, chain):
        with pytest.raises(ValueError):
            reach_by_step(chain, max_steps=0)
        with pytest.raises(ValueError):
            reach_by_step(TrustMatrix({"a": {"a": 1.0}}), observers=["a"])


class TestOrderingConvergence:
    def test_uniform_matrix_converged_immediately(self, dense_ring):
        taus = ordering_convergence(dense_ring, max_steps=3)
        assert all(tau == pytest.approx(1.0) for tau in taus)

    def test_returns_one_tau_per_transition(self, chain):
        taus = ordering_convergence(chain, max_steps=4)
        assert len(taus) == 3
        assert all(-1.0 <= tau <= 1.0 for tau in taus)

    def test_validation(self, chain):
        with pytest.raises(ValueError):
            ordering_convergence(chain, max_steps=1)


class TestStepsToConverge:
    def test_dense_converges_at_one(self, dense_ring):
        assert steps_to_converge(dense_ring, max_steps=3) == 1

    def test_none_when_never_converging(self, chain):
        # The chain's ordering keeps shifting as mass moves down the chain
        # and then vanishes; with a strict tolerance nothing qualifies.
        result = steps_to_converge(chain, max_steps=3, tolerance=1.0)
        assert result is None or result >= 1

    def test_tolerance_validation(self, dense_ring):
        with pytest.raises(ValueError):
            steps_to_converge(dense_ring, tolerance=0.0)

    def test_realistic_community_converges_fast(self):
        """A well-mixed trust community needs very few steps — the
        quantitative backbone of the paper's 'n = 1 is enough' choice."""
        import random
        rng = random.Random(4)
        ids = [f"u{i}" for i in range(30)]
        matrix = TrustMatrix()
        for i in ids:
            for j in rng.sample(ids, 10):
                if i != j:
                    matrix.set(i, j, rng.uniform(0.3, 1.0))
        one_step = matrix.row_normalized()
        step = steps_to_converge(one_step, max_steps=5, tolerance=0.95)
        assert step is not None and step <= 3


class TestStepsToConvergeBoundaries:
    def test_two_hub_community_converges_within_budget(self):
        """Two hubs bridge two groups; ordering settles in a few powers."""
        matrix = TrustMatrix()
        left = [f"l{i}" for i in range(4)]
        right = [f"r{i}" for i in range(4)]
        for peer in left:
            matrix.set(peer, "hub-l", 1.0)
        for peer in right:
            matrix.set(peer, "hub-r", 1.0)
        matrix.set("hub-l", "hub-r", 0.5)
        matrix.set("hub-r", "hub-l", 0.5)
        for i, peer in enumerate(left):
            matrix.set("hub-l", peer, 0.1 * (i + 1))
        for i, peer in enumerate(right):
            matrix.set("hub-r", peer, 0.1 * (i + 1))
        steps = steps_to_converge(matrix.row_normalized(), max_steps=6,
                                  tolerance=0.95)
        assert steps is not None
        assert 1 <= steps <= 6

    def test_lower_tolerance_never_needs_more_steps(self, dense_ring):
        strict = steps_to_converge(dense_ring, tolerance=0.999)
        loose = steps_to_converge(dense_ring, tolerance=0.5)
        assert strict is not None and loose is not None
        assert loose <= strict

    def test_max_steps_caps_the_search(self, chain):
        # The chain keeps reordering while trust mass slides down it, so
        # a short budget finds nothing; once the nilpotent matrix dies out
        # (TM^4 = 0) successive powers trivially agree.
        assert steps_to_converge(chain, max_steps=3) is None
        assert steps_to_converge(chain, max_steps=5) == 4
        # Comparing successive powers needs at least two of them.
        with pytest.raises(ValueError, match="max_steps"):
            steps_to_converge(chain, max_steps=1)

    def test_degenerate_matrices_rejected(self):
        with pytest.raises(ValueError, match="two common keys"):
            steps_to_converge(TrustMatrix(), max_steps=3)

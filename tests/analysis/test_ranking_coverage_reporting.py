"""Tests for repro.analysis ranking, coverage and reporting helpers."""

import pytest

from repro.analysis import (dimension_densities, kendall_tau,
                            matrix_edge_coverage, rank_of, render_series,
                            render_table, separation, tit_for_tat_coverage,
                            top_k_overlap)
from repro.core import TrustMatrix
from repro.traces import DownloadRecord, DownloadTrace


class TestKendallTau:
    def test_identical_orderings(self):
        a = {"x": 3.0, "y": 2.0, "z": 1.0}
        assert kendall_tau(a, a) == pytest.approx(1.0)

    def test_reversed_orderings(self):
        a = {"x": 3.0, "y": 2.0, "z": 1.0}
        b = {"x": 1.0, "y": 2.0, "z": 3.0}
        assert kendall_tau(a, b) == pytest.approx(-1.0)

    def test_only_common_keys_compared(self):
        a = {"x": 1.0, "y": 2.0, "only_a": 9.0}
        b = {"x": 1.0, "y": 2.0, "only_b": 9.0}
        assert kendall_tau(a, b) == pytest.approx(1.0)

    def test_too_few_common_keys(self):
        with pytest.raises(ValueError):
            kendall_tau({"x": 1.0}, {"x": 1.0})


class TestTopKAndRank:
    def test_top_k_overlap(self):
        a = {"w": 4.0, "x": 3.0, "y": 2.0, "z": 1.0}
        b = {"w": 4.0, "x": 3.0, "y": 0.0, "z": 5.0}
        assert top_k_overlap(a, b, 2) == pytest.approx(0.5)

    def test_top_k_invalid(self):
        with pytest.raises(ValueError):
            top_k_overlap({}, {}, 0)

    def test_rank_of(self):
        scores = {"best": 3.0, "middle": 2.0, "worst": 1.0}
        assert rank_of(scores, "best") == 1
        assert rank_of(scores, "worst") == 3

    def test_rank_of_missing_raises(self):
        with pytest.raises(KeyError):
            rank_of({"a": 1.0}, "z")

    def test_separation_sign(self):
        scores = {"g1": 0.9, "g2": 0.8, "b1": 0.1}
        assert separation(scores, ["g1", "g2"], ["b1"]) > 0
        assert separation(scores, ["b1"], ["g1", "g2"]) < 0

    def test_separation_empty_population_rejected(self):
        with pytest.raises(ValueError):
            separation({"a": 1.0}, [], ["a"])


def _trace(records):
    trace = DownloadTrace()
    for uploader, downloader, timestamp in records:
        trace.append(DownloadRecord(uploader, downloader, timestamp,
                                    "f", "f.dat", 1.0))
    return trace


class TestTitForTatCoverage:
    def test_no_reciprocity_means_zero(self):
        trace = _trace([("a", "b", 0.0), ("a", "c", 1.0)])
        assert tit_for_tat_coverage(trace) == 0.0

    def test_reciprocal_pair_covered(self):
        # b downloads from a, then a downloads from... b uploads to a:
        # second record: b serves a -> b previously downloaded from a.
        trace = _trace([("a", "b", 0.0), ("b", "a", 1.0)])
        assert tit_for_tat_coverage(trace) == pytest.approx(0.5)

    def test_empty_trace(self):
        assert tit_for_tat_coverage(DownloadTrace()) == 0.0


class TestMatrixEdgeCoverage:
    def test_counts_edges_in_direction_uploader_to_downloader(self):
        trace = _trace([("a", "b", 0.0), ("c", "d", 1.0)])
        matrix = TrustMatrix({"a": {"b": 1.0}})
        assert matrix_edge_coverage(trace, matrix) == pytest.approx(0.5)

    def test_empty_trace_zero(self):
        assert matrix_edge_coverage(DownloadTrace(), TrustMatrix()) == 0.0


class TestDimensionDensities:
    def test_integration_gain(self):
        fm = TrustMatrix({"a": {"b": 1.0}})
        dm = TrustMatrix({"b": {"c": 1.0}})
        um = TrustMatrix({"c": {"a": 1.0}})
        integrated = TrustMatrix.weighted_sum([(1 / 3, fm), (1 / 3, dm),
                                               (1 / 3, um)])
        densities = dimension_densities(fm, dm, um, integrated)
        assert densities.integrated_density == pytest.approx(3 / 6)
        assert densities.integration_gain() == pytest.approx(3.0)

    def test_padding_population(self):
        fm = TrustMatrix({"a": {"b": 1.0}})
        empty = TrustMatrix()
        densities = dimension_densities(fm, empty, empty, fm, population=10)
        assert densities.file_density == pytest.approx(1 / 90)


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table(["name", "value"], [["a", 1.5], ["bb", None]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "1.500" in text
        assert "-" in lines[3]

    def test_render_table_with_title(self):
        text = render_table(["h"], [["x"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_render_table_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_render_series(self):
        text = render_series({"cov": [0.1, 0.2]}, x_labels=["day0", "day1"],
                             x_header="day")
        assert "day0" in text and "0.200" in text

    def test_render_series_length_mismatch(self):
        with pytest.raises(ValueError):
            render_series({"a": [1.0], "b": [1.0, 2.0]})

    def test_render_series_requires_data(self):
        with pytest.raises(ValueError):
            render_series({})


class TestJainFairness:
    def test_equal_allocation_is_one(self):
        from repro.analysis import jain_fairness
        assert jain_fairness([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_winner_take_all_is_one_over_n(self):
        from repro.analysis import jain_fairness
        assert jain_fairness([0.0, 0.0, 0.0, 12.0]) == pytest.approx(0.25)

    def test_monotone_in_inequality(self):
        from repro.analysis import jain_fairness
        assert jain_fairness([1.0, 9.0]) < jain_fairness([4.0, 6.0])

    def test_zero_total_is_trivially_fair(self):
        from repro.analysis import jain_fairness
        assert jain_fairness([0.0, 0.0]) == 1.0

    def test_validation(self):
        from repro.analysis import jain_fairness
        with pytest.raises(ValueError):
            jain_fairness([])
        with pytest.raises(ValueError):
            jain_fairness([-1.0, 2.0])

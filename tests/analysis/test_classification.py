"""Tests for repro.analysis.classification."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import ConfusionMatrix, auc, roc_points, score_judgements


class TestConfusionMatrix:
    def test_perfect_detector(self):
        matrix = ConfusionMatrix(true_positives=10, true_negatives=10)
        assert matrix.precision == 1.0
        assert matrix.recall == 1.0
        assert matrix.f1 == 1.0
        assert matrix.accuracy == 1.0

    def test_useless_detector(self):
        matrix = ConfusionMatrix(false_positives=5, false_negatives=5)
        assert matrix.precision == 0.0
        assert matrix.recall == 0.0
        assert matrix.f1 == 0.0

    def test_empty_matrix_safe(self):
        matrix = ConfusionMatrix()
        assert matrix.precision == 0.0
        assert matrix.recall == 0.0
        assert matrix.accuracy == 0.0
        assert matrix.false_positive_rate == 0.0

    def test_false_positive_rate(self):
        matrix = ConfusionMatrix(false_positives=2, true_negatives=8)
        assert matrix.false_positive_rate == pytest.approx(0.2)


class TestScoreJudgements:
    def test_counts_all_four_cells(self):
        truth = {"tp": True, "fn": True, "fp": False, "tn": False}
        flagged = {"tp": True, "fn": False, "fp": True, "tn": False}
        matrix = score_judgements(flagged, truth)
        assert matrix.true_positives == 1
        assert matrix.false_negatives == 1
        assert matrix.false_positives == 1
        assert matrix.true_negatives == 1

    def test_missing_flags_default_to_real(self):
        truth = {"a": True, "b": False}
        matrix = score_judgements({}, truth)
        assert matrix.false_negatives == 1
        assert matrix.true_negatives == 1

    @given(truth=st.dictionaries(st.text(min_size=1, max_size=4),
                                 st.booleans(), max_size=20),
           flags=st.dictionaries(st.text(min_size=1, max_size=4),
                                 st.booleans(), max_size=20))
    def test_cells_partition_ground_truth(self, truth, flags):
        matrix = score_judgements(flags, truth)
        assert matrix.total == len(truth)


class TestROC:
    def test_perfect_scores_give_auc_one(self):
        scores = {"fake1": 0.0, "fake2": 0.1, "real1": 0.9, "real2": 1.0}
        truth = {"fake1": True, "fake2": True, "real1": False, "real2": False}
        points = roc_points(scores, truth)
        assert auc(points) == pytest.approx(1.0)

    def test_inverted_scores_give_auc_zero(self):
        scores = {"fake1": 1.0, "real1": 0.0}
        truth = {"fake1": True, "real1": False}
        assert auc(roc_points(scores, truth)) == pytest.approx(0.0, abs=0.01)

    def test_random_scores_give_half(self):
        import random
        rng = random.Random(1)
        scores, truth = {}, {}
        for index in range(400):
            name = f"f{index}"
            scores[name] = rng.random()
            truth[name] = index % 2 == 0
        assert auc(roc_points(scores, truth)) == pytest.approx(0.5, abs=0.1)

    def test_points_monotone(self):
        scores = {"a": 0.2, "b": 0.5, "c": 0.8}
        truth = {"a": True, "b": False, "c": False}
        points = roc_points(scores, truth)
        xs = [x for x, _ in points]
        ys = [y for _, y in points]
        assert xs == sorted(xs)
        assert ys == sorted(ys)

    def test_empty_inputs(self):
        assert roc_points({}, {}) == []
        assert auc([]) == 0.0

    def test_unscored_files_skipped(self):
        scores = {"a": 0.1}
        truth = {"a": True, "unscored": False}
        points = roc_points(scores, truth)
        assert points[-1] == (1.0, 1.0)

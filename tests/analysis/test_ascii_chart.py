"""Tests for the ASCII chart renderer."""

import pytest

from repro.analysis import render_ascii_chart


class TestRenderAsciiChart:
    def test_basic_shape(self):
        chart = render_ascii_chart({"a": [0.0, 0.5, 1.0]}, height=5)
        lines = chart.splitlines()
        assert len(lines) == 6  # 5 rows + legend
        assert "o=a" in lines[-1]

    def test_title_prepended(self):
        chart = render_ascii_chart({"a": [1.0]}, height=3, title="My Chart")
        assert chart.splitlines()[0] == "My Chart"

    def test_y_axis_labels(self):
        chart = render_ascii_chart({"a": [0.0, 1.0]}, height=4,
                                   y_min=0.0, y_max=1.0)
        assert "1.00" in chart
        assert "0.00" in chart

    def test_high_values_on_top(self):
        chart = render_ascii_chart({"a": [0.0, 1.0]}, height=3,
                                   y_min=0.0, y_max=1.0)
        rows = [line for line in chart.splitlines() if "|" in line]
        assert rows[0].split("|")[1] == " o"   # high point in top row
        assert rows[-1].split("|")[1] == "o "  # low point in bottom row

    def test_multiple_series_get_distinct_marks(self):
        chart = render_ascii_chart({"low": [0.0], "high": [1.0]}, height=3,
                                   y_min=0.0, y_max=1.0)
        assert "o=low" in chart and "x=high" in chart

    def test_values_clamped_to_range(self):
        chart = render_ascii_chart({"a": [5.0]}, height=3,
                                   y_min=0.0, y_max=1.0)
        rows = [line for line in chart.splitlines() if "|" in line]
        assert "o" in rows[0]

    def test_flat_series_does_not_crash(self):
        chart = render_ascii_chart({"a": [0.5, 0.5, 0.5]}, height=3)
        assert "o" in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            render_ascii_chart({})
        with pytest.raises(ValueError):
            render_ascii_chart({"a": []})
        with pytest.raises(ValueError):
            render_ascii_chart({"a": [1.0], "b": [1.0, 2.0]})
        with pytest.raises(ValueError):
            render_ascii_chart({"a": [1.0]}, height=1)

    def test_too_many_series_rejected(self):
        series = {f"s{i}": [0.5] for i in range(9)}
        with pytest.raises(ValueError, match="at most"):
            render_ascii_chart(series)

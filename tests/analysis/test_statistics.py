"""Tests for repro.analysis.statistics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import (bootstrap_mean_ci, replicate,
                            summarize_replicates)


class TestBootstrapCI:
    def test_single_value_collapses(self):
        mean, low, high = bootstrap_mean_ci([5.0])
        assert mean == low == high == 5.0

    def test_interval_contains_mean(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        mean, low, high = bootstrap_mean_ci(values, seed=1)
        assert low <= mean <= high
        assert mean == pytest.approx(3.0)

    def test_deterministic_for_seed(self):
        values = [1.0, 5.0, 2.0, 8.0]
        assert bootstrap_mean_ci(values, seed=3) == bootstrap_mean_ci(
            values, seed=3)

    def test_tighter_with_more_confidence_means_wider_interval(self):
        values = list(range(20))
        _, low95, high95 = bootstrap_mean_ci(values, confidence=0.95, seed=1)
        _, low50, high50 = bootstrap_mean_ci(values, confidence=0.50, seed=1)
        assert (high95 - low95) >= (high50 - low50)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_mean_ci([])
        with pytest.raises(ValueError):
            bootstrap_mean_ci([1.0], confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_mean_ci([1.0], resamples=0)

    @given(values=st.lists(st.floats(min_value=-100, max_value=100),
                           min_size=2, max_size=30))
    def test_interval_bounds_within_data_range(self, values):
        _, low, high = bootstrap_mean_ci(values, seed=2, resamples=200)
        assert min(values) - 1e-9 <= low <= high <= max(values) + 1e-9


class TestReplicate:
    def test_collects_per_seed_metrics(self):
        collected = replicate(lambda seed: {"x": seed * 2.0}, [1, 2, 3])
        assert collected == {"x": [2.0, 4.0, 6.0]}

    def test_multiple_metrics(self):
        collected = replicate(lambda seed: {"a": 1.0, "b": float(seed)},
                              [5, 6])
        assert collected["a"] == [1.0, 1.0]
        assert collected["b"] == [5.0, 6.0]

    def test_inconsistent_metrics_rejected(self):
        def experiment(seed):
            return {"a": 1.0} if seed == 1 else {"b": 1.0}
        with pytest.raises(ValueError):
            replicate(experiment, [1, 2])

    def test_empty_seed_list_rejected(self):
        with pytest.raises(ValueError):
            replicate(lambda seed: {"x": 0.0}, [])


class TestSummaries:
    def test_summaries_sorted_by_metric(self):
        collected = {"z": [1.0, 2.0], "a": [3.0, 4.0]}
        summaries = summarize_replicates(collected, seed=1)
        assert [s.metric for s in summaries] == ["a", "z"]

    def test_summary_fields(self):
        summaries = summarize_replicates({"m": [1.0, 2.0, 3.0]}, seed=1)
        summary = summaries[0]
        assert summary.n == 3
        assert summary.ci_low <= summary.mean <= summary.ci_high
        assert len(summary.row()) == 5

"""Tests for the round-based stabilising DHT network."""

import random

import pytest

from repro.dht import hash_key, lookup
from repro.dht.stabilization import StabilizingDHTNetwork


def _network(n):
    network = StabilizingDHTNetwork()
    for index in range(n):
        network.join(f"node-{index:03d}")
    return network


class TestJoinConvergence:
    def test_single_node_self_ring(self):
        network = _network(1)
        node = network.nodes()[0]
        assert node.successor is node

    def test_joins_converge_to_ideal_ring(self):
        network = _network(16)
        rounds = network.stabilize_until_consistent()
        assert rounds >= 1
        # After convergence, pointers equal the ideal ring's.
        for node in network.nodes():
            ideal = network._first_at_or_after(node.node_id + 1)
            assert node.successor is ideal

    def test_lookups_correct_after_convergence(self):
        network = _network(24)
        network.stabilize_until_consistent()
        rng = random.Random(1)
        for _ in range(30):
            key = rng.randrange(2 ** 160)
            result = lookup(network, key)
            assert result.owner is network.owner_of(key)

    def test_membership_bookkeeping(self):
        network = _network(8)
        assert len(network) == 8
        assert network.has_node("node-003")


class TestChurnConvergence:
    def test_failures_then_convergence(self):
        network = _network(20)
        network.stabilize_until_consistent()
        for index in range(6):
            network.fail(f"node-{index:03d}")
        # Pointers are now stale; rounds repair them.
        rounds = network.stabilize_until_consistent()
        assert rounds >= 1
        key = hash_key("after-failures")
        assert lookup(network, key).owner is network.owner_of(key)

    def test_mixed_churn_burst(self):
        network = _network(16)
        network.stabilize_until_consistent()
        rng = random.Random(7)
        for burst in range(3):
            alive = [node.user_id for node in network.nodes()]
            for victim in rng.sample(alive, 3):
                network.fail(victim)
            for index in range(3):
                network.join(f"fresh-{burst}-{index}")
            network.stabilize_until_consistent()
        for seed in range(10):
            key = hash_key(f"post-burst-{seed}")
            assert lookup(network, key).owner is network.owner_of(key)

    def test_graceful_leave_hands_off_data_before_repair(self):
        network = _network(10)
        network.stabilize_until_consistent()
        node = network.node("node-004")
        node.storage.put(42, "owner", "precious", now=0.0)
        successor = node.successor
        network.leave("node-004")
        assert successor.storage.get_owner(42, "owner", now=1.0) is not None

    def test_convergence_is_not_instant_under_churn(self):
        """The point of the class: repairs take visible work."""
        network = _network(20)
        network.stabilize_until_consistent()
        for index in range(8, 14):
            network.fail(f"node-{index:03d}")
        # Immediately after the failures, at least one pointer is stale.
        assert not network._is_consistent()

    def test_insufficient_round_budget_raises(self):
        network = _network(20)
        network.stabilize_until_consistent()
        for index in range(8, 14):
            network.fail(f"node-{index:03d}")
        # Finger repair is round-robin over 24 slots, so one round cannot
        # restore full consistency after a six-node massacre.
        with pytest.raises(RuntimeError, match="did not converge"):
            network.stabilize_until_consistent(max_rounds=1)


class TestRoundMechanics:
    def test_stabilize_alias_runs_one_round(self):
        network = _network(8)
        network.stabilize()  # one round, no oracle
        # One round may or may not converge but must never corrupt:
        # every node keeps an alive successor.
        for node in network.nodes():
            assert node.successor is not None
            assert node.successor.alive

    def test_fingers_repair_round_robin(self):
        network = _network(8)
        node = network.nodes()[0]
        start = network._next_finger[node.node_id]
        network.stabilize_round()
        assert network._next_finger[node.node_id] == \
            (start + 1) % network.finger_count

"""Tests for repro.dht.storage: TTL storage."""

import pytest

from repro.dht import NodeStorage


class TestPutGet:
    def test_round_trip(self):
        storage = NodeStorage(default_ttl=100.0)
        storage.put(1, "alice", "value", now=0.0)
        records = storage.get(1, now=10.0)
        assert len(records) == 1
        assert records[0].value == "value"

    def test_one_record_per_owner_per_key(self):
        storage = NodeStorage(default_ttl=100.0)
        storage.put(1, "alice", "old", now=0.0)
        storage.put(1, "alice", "new", now=10.0)
        records = storage.get(1, now=20.0)
        assert [r.value for r in records] == ["new"]

    def test_multiple_owners_coexist(self):
        storage = NodeStorage(default_ttl=100.0)
        storage.put(1, "alice", "a", now=0.0)
        storage.put(1, "bob", "b", now=0.0)
        assert len(storage.get(1, now=1.0)) == 2

    def test_get_owner(self):
        storage = NodeStorage(default_ttl=100.0)
        storage.put(1, "alice", "a", now=0.0)
        assert storage.get_owner(1, "alice", now=1.0).value == "a"
        assert storage.get_owner(1, "bob", now=1.0) is None

    def test_invalid_ttl_rejected(self):
        with pytest.raises(ValueError):
            NodeStorage(default_ttl=0.0)


class TestExpiry:
    def test_records_expire_after_ttl(self):
        storage = NodeStorage(default_ttl=100.0)
        storage.put(1, "alice", "a", now=0.0)
        assert storage.get(1, now=99.0)
        assert storage.get(1, now=100.0) == []

    def test_republication_refreshes_ttl(self):
        """Section 4.1 step 2: update via regular republication."""
        storage = NodeStorage(default_ttl=100.0)
        storage.put(1, "alice", "a", now=0.0)
        storage.put(1, "alice", "a", now=90.0)  # republish
        assert storage.get(1, now=150.0)

    def test_per_record_ttl_override(self):
        storage = NodeStorage(default_ttl=100.0)
        storage.put(1, "alice", "a", now=0.0, ttl=10.0)
        assert storage.get(1, now=20.0) == []

    def test_expire_all_counts_removals(self):
        storage = NodeStorage(default_ttl=10.0)
        storage.put(1, "alice", "a", now=0.0)
        storage.put(2, "bob", "b", now=5.0)
        assert storage.expire_all(now=12.0) == 1
        assert len(storage) == 1

    def test_expired_keys_removed_from_keys(self):
        storage = NodeStorage(default_ttl=10.0)
        storage.put(1, "alice", "a", now=0.0)
        storage.expire_all(now=100.0)
        assert storage.keys() == []


class TestRemove:
    def test_remove_existing(self):
        storage = NodeStorage()
        storage.put(1, "alice", "a", now=0.0)
        assert storage.remove(1, "alice")
        assert len(storage) == 0

    def test_remove_missing_returns_false(self):
        assert not NodeStorage().remove(1, "alice")

    def test_records_iterator(self):
        storage = NodeStorage()
        storage.put(1, "alice", "a", now=0.0)
        storage.put(2, "bob", "b", now=0.0)
        assert sorted(r.owner_id for r in storage.records()) == ["alice", "bob"]

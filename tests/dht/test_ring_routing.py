"""Tests for repro.dht.ring and routing."""

import math
import random
import statistics

import pytest

from repro.dht import DHTNetwork, hash_key, lookup


def _network(n, prefix="node"):
    network = DHTNetwork()
    for index in range(n):
        network.join(f"{prefix}-{index:04d}")
    return network


class TestMembership:
    def test_join_adds_node(self):
        network = DHTNetwork()
        node = network.join("alice")
        assert len(network) == 1
        assert network.node("alice") is node

    def test_join_is_idempotent(self):
        network = DHTNetwork()
        first = network.join("alice")
        second = network.join("alice")
        assert first is second
        assert len(network) == 1

    def test_leave_removes_node(self):
        network = _network(5)
        network.leave("node-0000")
        assert len(network) == 4
        assert not network.has_node("node-0000")

    def test_leave_unknown_raises(self):
        with pytest.raises(KeyError):
            DHTNetwork().leave("ghost")

    def test_graceful_leave_hands_off_data(self):
        network = _network(5)
        node = network.node("node-0001")
        node.storage.put(123, "owner", "value", now=0.0)
        successor = network.successor_of(node)
        network.leave("node-0001")
        assert successor.storage.get_owner(123, "owner", now=1.0) is not None

    def test_abrupt_failure_loses_data(self):
        network = _network(5)
        node = network.node("node-0001")
        node.storage.put(123, "owner", "value", now=0.0)
        successor = network.successor_of(node)
        network.fail("node-0001")
        assert successor.storage.get_owner(123, "owner", now=1.0) is None


class TestTopology:
    def test_ring_is_circular(self):
        network = _network(8)
        nodes = network.nodes()
        walked = [nodes[0]]
        for _ in range(7):
            walked.append(network.successor_of(walked[-1]))
        assert {node.user_id for node in walked} == {
            node.user_id for node in nodes}

    def test_successor_of_single_node_is_itself(self):
        network = _network(1)
        node = network.nodes()[0]
        assert network.successor_of(node) is node

    def test_predecessor_successor_inverse(self):
        network = _network(10)
        for node in network.nodes():
            assert node.successor.predecessor is node

    def test_owner_of_key_is_first_at_or_after(self):
        network = _network(10)
        nodes = network.nodes()
        key = (nodes[3].node_id + 1) % (2 ** 160)
        assert network.owner_of(key) is nodes[4 % len(nodes)]

    def test_owner_of_node_id_is_that_node(self):
        network = _network(10)
        node = network.nodes()[2]
        assert network.owner_of(node.node_id) is node

    def test_replica_nodes_distinct_successors(self):
        network = _network(6)
        replicas = network.replica_nodes(hash_key("x"), 3)
        assert len(replicas) == 3
        assert len({r.node_id for r in replicas}) == 3

    def test_replica_count_capped_by_network_size(self):
        network = _network(2)
        assert len(network.replica_nodes(hash_key("x"), 5)) == 2


class TestRouting:
    def test_lookup_finds_owner(self):
        network = _network(32)
        key = hash_key("some-file")
        result = lookup(network, key)
        assert result.owner is network.owner_of(key)

    def test_lookup_from_every_start(self):
        network = _network(16)
        key = hash_key("target")
        expected = network.owner_of(key)
        for node in network.nodes():
            assert lookup(network, key, start=node).owner is expected

    def test_lookup_hops_logarithmic(self):
        network = _network(128)
        rng = random.Random(1)
        hops = [lookup(network, rng.randrange(2 ** 160)).hops
                for _ in range(200)]
        # Chord bound: O(log2 n) = 7; allow slack but far below n.
        assert statistics.mean(hops) < 2 * math.log2(128)
        assert max(hops) < 32

    def test_lookup_in_singleton_network(self):
        network = _network(1)
        result = lookup(network, hash_key("x"))
        assert result.hops == 0

    def test_lookup_in_empty_network_raises(self):
        with pytest.raises(RuntimeError):
            lookup(DHTNetwork(), 123)

    def test_path_starts_at_start_node(self):
        network = _network(8)
        start = network.nodes()[3]
        result = lookup(network, hash_key("y"), start=start)
        assert result.path[0] == start.user_id
        assert result.path[-1] == result.owner.user_id

    def test_routing_survives_churn(self):
        network = _network(32)
        for index in range(10):
            network.fail(f"node-{index:04d}")
        for index in range(40, 50):
            network.join(f"node-{index:04d}")
        key = hash_key("post-churn")
        assert lookup(network, key).owner is network.owner_of(key)

"""Tests for repro.dht.faults and repro.dht.retry, and fault-aware routing."""

import random

import pytest

from repro.dht import (DHTError, DHTNetwork, EmptyNetworkError, FaultPlan,
                       NetworkPartitionError, RetryBudget,
                       RetryBudgetExhausted, RetryPolicy, RoutingError,
                       RPCOutcome, hash_key, lookup)
from repro.dht.messages import MessageKind, MessageTally


def _network(n, prefix="node"):
    network = DHTNetwork()
    for index in range(n):
        network.join(f"{prefix}-{index:04d}")
    return network


class TestFaultPlan:
    def test_none_is_inactive(self):
        assert not FaultPlan.none().active

    def test_any_dimension_activates(self):
        assert FaultPlan(drop_probability=0.1).active
        assert FaultPlan(crash_probability=0.1).active
        assert FaultPlan(base_latency_seconds=0.01).active
        assert FaultPlan(partitions={"a": 1}).active

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(drop_probability=1.0)
        with pytest.raises(ValueError):
            FaultPlan(drop_probability=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(crash_probability=1.5)
        with pytest.raises(ValueError):
            FaultPlan(base_latency_seconds=-1.0)

    def test_deterministic_for_seed(self):
        outcomes_a = [FaultPlan(drop_probability=0.5, seed=9).transmit("a", "b")
                      for _ in range(1)]
        plan_a = FaultPlan(drop_probability=0.5, seed=9)
        plan_b = FaultPlan(drop_probability=0.5, seed=9)
        seq_a = [plan_a.transmit("a", "b")[0] for _ in range(50)]
        seq_b = [plan_b.transmit("a", "b")[0] for _ in range(50)]
        assert seq_a == seq_b
        assert outcomes_a[0][0] in (RPCOutcome.DELIVERED, RPCOutcome.DROPPED)

    def test_does_not_touch_global_random(self):
        random.seed(123)
        expected = random.Random(123).random()
        plan = FaultPlan(drop_probability=0.5, seed=1)
        for _ in range(20):
            plan.transmit("a", "b")
        assert random.random() == expected

    def test_partition_blocks_cross_group(self):
        plan = FaultPlan(partitions={"a": 0, "b": 1})
        assert not plan.reachable("a", "b")
        assert plan.reachable("a", "c")  # c is in the default group 0
        outcome, _ = plan.transmit("a", "b")
        assert outcome is RPCOutcome.PARTITIONED

    def test_heal_partitions(self):
        plan = FaultPlan(partitions={"a": 0, "b": 1})
        plan.heal_partitions()
        assert plan.reachable("a", "b")
        assert not plan.active

    def test_latency_sampling(self):
        plan = FaultPlan(base_latency_seconds=0.5,
                         mean_latency_jitter_seconds=0.1, seed=4)
        draws = [plan.sample_latency() for _ in range(100)]
        assert all(draw >= 0.5 for draw in draws)
        assert len(set(draws)) > 1


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_seconds=1.0, max_delay_seconds=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter_fraction=1.5)

    def test_backoff_grows_then_caps(self):
        policy = RetryPolicy(base_delay_seconds=0.1, backoff_factor=2.0,
                             max_delay_seconds=0.4, jitter_fraction=0.0)
        rng = random.Random(0)
        delays = [policy.backoff_delay(a, rng) for a in range(5)]
        assert delays == [0.1, 0.2, 0.4, 0.4, 0.4]

    def test_jitter_stays_bounded(self):
        policy = RetryPolicy(base_delay_seconds=1.0, backoff_factor=1.0,
                             max_delay_seconds=1.0, jitter_fraction=0.2)
        rng = random.Random(7)
        for _ in range(50):
            delay = policy.backoff_delay(0, rng)
            assert 0.8 <= delay <= 1.2

    def test_budget_drains(self):
        budget = RetryBudget(RetryPolicy(retry_budget=2))
        assert budget.try_consume()
        assert budget.try_consume()
        assert not budget.try_consume()
        assert budget.exhausted
        assert budget.spent == 2


class TestErrorHierarchy:
    def test_all_are_runtime_errors(self):
        for error_type in (DHTError, EmptyNetworkError, RoutingError,
                           NetworkPartitionError, RetryBudgetExhausted):
            assert issubclass(error_type, RuntimeError)
            assert issubclass(error_type, DHTError) or error_type is DHTError

    def test_empty_network_lookup_is_typed(self):
        with pytest.raises(EmptyNetworkError):
            lookup(DHTNetwork(), 123)


class TestFaultAwareLookup:
    def test_inactive_plan_matches_plain_lookup(self):
        network = _network(32)
        key = hash_key("some-file")
        plain = lookup(network, key)
        injected = lookup(network, key, faults=FaultPlan.none())
        assert injected.owner is plain.owner
        assert injected.hops == plain.hops
        assert injected.path == plain.path
        assert injected.ok

    def test_lossy_lookup_still_finds_owner(self):
        network = _network(32)
        plan = FaultPlan(drop_probability=0.2, seed=5)
        for probe in range(20):
            key = hash_key(f"file-{probe}")
            result = lookup(network, key, faults=plan)
            assert result.ok
            assert result.owner is network.owner_of(key)

    def test_drops_are_tallied_and_retried(self):
        network = _network(32)
        plan = FaultPlan(drop_probability=0.4, seed=8)
        tally = MessageTally()
        for probe in range(30):
            lookup(network, hash_key(f"file-{probe}"), faults=plan,
                   tally=tally)
        assert tally.drops > 0
        assert tally.retries > 0

    def test_budget_exhaustion_returns_typed_failure(self):
        network = _network(16)
        plan = FaultPlan(drop_probability=0.95, seed=2)
        policy = RetryPolicy(max_attempts=2, retry_budget=2,
                             jitter_fraction=0.0)
        failures = 0
        for probe in range(30):
            start = network.any_node()
            key = hash_key(f"file-{probe}")
            if start is not None and lookup(network, key).owner is start:
                continue  # zero-hop lookups cannot fail
            result = lookup(network, key, faults=plan, retry_policy=policy)
            if not result.ok:
                failures += 1
                assert result.owner is None
                assert isinstance(result.error, DHTError)
        assert failures > 0

    def test_partitioned_target_fails_typed(self):
        network = _network(8)
        key = hash_key("split-brain")
        owner = network.owner_of(key)
        start = next(node for node in network.nodes() if node is not owner)
        plan = FaultPlan(partitions={owner.user_id: 1})
        result = lookup(network, key, start=start, faults=plan)
        assert not result.ok
        assert isinstance(result.error, NetworkPartitionError)

    def test_crash_mid_rpc_removes_node(self):
        network = _network(24)
        plan = FaultPlan(crash_probability=0.5, seed=3)
        before = len(network)
        for probe in range(20):
            lookup(network, hash_key(f"file-{probe}"), faults=plan)
        assert len(network) < before

    def test_latency_accumulates(self):
        network = _network(16)
        plan = FaultPlan(base_latency_seconds=0.01, seed=1)
        key = hash_key("timed")
        result = lookup(network, key, faults=plan)
        assert result.ok
        if result.hops > 0:
            assert result.latency > 0.0

"""Regression tests: rejoining a dead node must not resurrect stale state."""

import pytest

from repro.dht import DHTNetwork, StabilizingDHTNetwork, hash_key, lookup


def _network(cls, n):
    network = cls()
    for index in range(n):
        network.join(f"node-{index:04d}")
    return network


@pytest.mark.parametrize("cls", [DHTNetwork, StabilizingDHTNetwork])
class TestRejoinIsFresh:
    def test_rejoin_after_fail_resets_storage(self, cls):
        network = _network(cls, 6)
        node = network.node("node-0002")
        node.storage.put(hash_key("k"), "owner", "value", now=0.0)
        network.fail("node-0002")
        fresh = network.join("node-0002")
        assert fresh is not node
        assert len(fresh.storage) == 0
        assert fresh.alive

    def test_rejoin_after_unclean_crash_purges_stale_entry(self, cls):
        """A node marked dead without bookkeeping cleanup (crash-mid-RPC
        style) must be fully purged on rejoin, not resurrected."""
        network = _network(cls, 6)
        node = network.node("node-0003")
        node.storage.put(hash_key("k"), "owner", "precious", now=0.0)
        node.alive = False  # unclean: still registered everywhere
        fresh = network.join("node-0003")
        assert fresh is not node
        assert fresh.alive
        assert len(fresh.storage) == 0
        # No duplicate ids in the ring ordering.
        ids = network._sorted_ids
        assert len(ids) == len(set(ids))
        assert len(ids) == 6

    def test_rejoin_keeps_ring_routable(self, cls):
        network = _network(cls, 8)
        network.fail("node-0004")
        network.join("node-0004")
        if isinstance(network, StabilizingDHTNetwork):
            network.stabilize_until_consistent()
        key = hash_key("after-rejoin")
        assert lookup(network, key).owner is network.owner_of(key)

    def test_alive_join_stays_idempotent(self, cls):
        network = _network(cls, 4)
        first = network.node("node-0001")
        assert network.join("node-0001") is first
        assert len(network) == 4

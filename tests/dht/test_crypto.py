"""Tests for repro.dht.crypto: simulated signatures."""

import pytest

from repro.dht import KeyAuthority, SignatureError


class TestKeyAuthority:
    def test_sign_verify_round_trip(self):
        authority = KeyAuthority()
        authority.register("alice")
        signature = authority.sign("alice", b"payload")
        assert authority.verify("alice", b"payload", signature)

    def test_tampered_payload_fails(self):
        authority = KeyAuthority()
        authority.register("alice")
        signature = authority.sign("alice", b"payload")
        assert not authority.verify("alice", b"tampered", signature)

    def test_wrong_signer_fails(self):
        """The Section 4.2 attack-1 property: only the owner can sign."""
        authority = KeyAuthority()
        authority.register("alice")
        authority.register("mallory")
        forged = authority.sign("mallory", b"payload")
        assert not authority.verify("alice", b"payload", forged)

    def test_unregistered_signer_raises(self):
        with pytest.raises(SignatureError):
            KeyAuthority().sign("ghost", b"payload")

    def test_unregistered_verification_fails_closed(self):
        assert not KeyAuthority().verify("ghost", b"p", b"sig")

    def test_register_is_idempotent(self):
        authority = KeyAuthority()
        authority.register("alice")
        first = authority.sign("alice", b"x")
        authority.register("alice")
        assert authority.sign("alice", b"x") == first

    def test_is_registered(self):
        authority = KeyAuthority()
        assert not authority.is_registered("alice")
        authority.register("alice")
        assert authority.is_registered("alice")

    def test_different_seeds_give_different_keys(self):
        a = KeyAuthority(seed=b"one")
        b = KeyAuthority(seed=b"two")
        a.register("alice")
        b.register("alice")
        assert a.sign("alice", b"x") != b.sign("alice", b"x")

"""Tests for repro.dht.messages."""

import pytest

from repro.dht import EvaluationInfo, IndexRecord, MessageKind, MessageTally


class TestEvaluationInfo:
    def test_paper_message_fields(self):
        """EvaluationInfo = <FileID, OwnerID, Evaluation, Signature>."""
        info = EvaluationInfo("f1", "alice", 0.8, b"sig")
        assert info.file_id == "f1"
        assert info.owner_id == "alice"
        assert info.evaluation == 0.8
        assert info.signature == b"sig"

    def test_out_of_range_evaluation_rejected(self):
        with pytest.raises(ValueError):
            EvaluationInfo("f", "a", 1.5)

    def test_payload_is_deterministic(self):
        a = EvaluationInfo("f", "alice", 0.5)
        b = EvaluationInfo("f", "alice", 0.5)
        assert a.payload() == b.payload()

    def test_payload_excludes_signature(self):
        unsigned = EvaluationInfo("f", "alice", 0.5)
        signed = unsigned.with_signature(b"sig")
        assert unsigned.payload() == signed.payload()

    def test_payload_differs_by_content(self):
        assert (EvaluationInfo("f", "alice", 0.5).payload()
                != EvaluationInfo("f", "alice", 0.6).payload())

    def test_size_includes_signature(self):
        unsigned = EvaluationInfo("f", "alice", 0.5)
        signed = unsigned.with_signature(b"x" * 32)
        assert signed.size_bytes() == unsigned.size_bytes() + 32


class TestIndexRecord:
    def test_wire_size_grows_with_evaluation(self):
        """The paper's cost claim: piggybacking increases size 'slightly'."""
        bare = IndexRecord("f", "alice", "name.dat", 100.0)
        info = EvaluationInfo("f", "alice", 0.5, b"s" * 32)
        with_eval = IndexRecord("f", "alice", "name.dat", 100.0,
                                evaluation=info)
        assert with_eval.wire_size() > bare.wire_size()
        assert with_eval.wire_size() < 3 * bare.wire_size() + 200


class TestMessageTally:
    def test_counts_and_bytes(self):
        tally = MessageTally()
        tally.record(MessageKind.PUBLISH, 100)
        tally.record(MessageKind.PUBLISH, 50)
        tally.record(MessageKind.LOOKUP, 0)
        assert tally.count(MessageKind.PUBLISH) == 2
        assert tally.total_messages() == 3
        assert tally.total_bytes() == 150

    def test_unused_kind_is_zero(self):
        assert MessageTally().count(MessageKind.RETRIEVE) == 0

    def test_snapshot(self):
        tally = MessageTally()
        tally.record(MessageKind.LOOKUP)
        snapshot = tally.snapshot()
        assert snapshot == {"lookup": 1}

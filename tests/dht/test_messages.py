"""Tests for repro.dht.messages."""

import pytest

from repro.dht import (EvaluationInfo, IndexRecord, MessageEnvelope,
                       MessageKind, MessageTally)


class TestEvaluationInfo:
    def test_paper_message_fields(self):
        """EvaluationInfo = <FileID, OwnerID, Evaluation, Signature>."""
        info = EvaluationInfo("f1", "alice", 0.8, b"sig")
        assert info.file_id == "f1"
        assert info.owner_id == "alice"
        assert info.evaluation == 0.8
        assert info.signature == b"sig"

    def test_out_of_range_evaluation_rejected(self):
        with pytest.raises(ValueError):
            EvaluationInfo("f", "a", 1.5)

    def test_payload_is_deterministic(self):
        a = EvaluationInfo("f", "alice", 0.5)
        b = EvaluationInfo("f", "alice", 0.5)
        assert a.payload() == b.payload()

    def test_payload_excludes_signature(self):
        unsigned = EvaluationInfo("f", "alice", 0.5)
        signed = unsigned.with_signature(b"sig")
        assert unsigned.payload() == signed.payload()

    def test_payload_differs_by_content(self):
        assert (EvaluationInfo("f", "alice", 0.5).payload()
                != EvaluationInfo("f", "alice", 0.6).payload())

    def test_size_includes_signature(self):
        unsigned = EvaluationInfo("f", "alice", 0.5)
        signed = unsigned.with_signature(b"x" * 32)
        assert signed.size_bytes() == unsigned.size_bytes() + 32


class TestIndexRecord:
    def test_wire_size_grows_with_evaluation(self):
        """The paper's cost claim: piggybacking increases size 'slightly'."""
        bare = IndexRecord("f", "alice", "name.dat", 100.0)
        info = EvaluationInfo("f", "alice", 0.5, b"s" * 32)
        with_eval = IndexRecord("f", "alice", "name.dat", 100.0,
                                evaluation=info)
        assert with_eval.wire_size() > bare.wire_size()
        assert with_eval.wire_size() < 3 * bare.wire_size() + 200


class TestMessageTally:
    def test_counts_and_bytes(self):
        tally = MessageTally()
        tally.record(MessageKind.PUBLISH, 100)
        tally.record(MessageKind.PUBLISH, 50)
        tally.record(MessageKind.LOOKUP, 0)
        assert tally.count(MessageKind.PUBLISH) == 2
        assert tally.total_messages() == 3
        assert tally.total_bytes() == 150

    def test_unused_kind_is_zero(self):
        assert MessageTally().count(MessageKind.RETRIEVE) == 0

    def test_snapshot(self):
        tally = MessageTally()
        tally.record(MessageKind.LOOKUP)
        snapshot = tally.snapshot()
        assert snapshot == {"lookup": 1}


class TestMessageEnvelope:
    def test_bare_envelope_adds_no_overhead(self):
        envelope = MessageEnvelope(kind=MessageKind.PUBLISH,
                                   payload_bytes=100)
        assert envelope.wire_size() == 100

    def test_causal_ids_cost_eight_bytes_each(self):
        base = MessageEnvelope(kind=MessageKind.PUBLISH, payload_bytes=100)
        with_span = MessageEnvelope(kind=MessageKind.PUBLISH,
                                    payload_bytes=100, span_id=7)
        with_both = MessageEnvelope(kind=MessageKind.PUBLISH,
                                    payload_bytes=100, span_id=7,
                                    trace_id=9)
        assert with_span.wire_size() == base.wire_size() + 8
        assert with_both.wire_size() == base.wire_size() + 16

    def test_wire_roundtrip(self):
        envelope = MessageEnvelope(kind=MessageKind.RETRIEVE,
                                   payload_bytes=42, span_id=123,
                                   trace_id=456)
        assert MessageEnvelope.from_wire(envelope.to_wire()) == envelope

    def test_wire_roundtrip_without_ids(self):
        envelope = MessageEnvelope(kind=MessageKind.REPUBLISH,
                                   payload_bytes=0)
        frame = envelope.to_wire()
        assert "span" not in frame and "trace" not in frame
        assert MessageEnvelope.from_wire(frame) == envelope

    def test_wire_frame_is_canonical(self):
        envelope = MessageEnvelope(kind=MessageKind.PUBLISH,
                                   payload_bytes=10, span_id=1, trace_id=2)
        assert envelope.to_wire() == ('{"kind":"publish","payload_bytes":10,'
                                      '"span":1,"trace":2}')

    def test_malformed_frames_rejected(self):
        with pytest.raises(ValueError):
            MessageEnvelope.from_wire("[]")
        with pytest.raises(ValueError):
            MessageEnvelope.from_wire('{"payload_bytes":1}')
        with pytest.raises(ValueError):
            MessageEnvelope.from_wire('{"kind":"no-such","payload_bytes":1}')

    def test_tally_accounts_envelope_overhead(self):
        tally = MessageTally()
        tally.record_envelope(MessageEnvelope(
            kind=MessageKind.PUBLISH, payload_bytes=100, span_id=1,
            trace_id=2))
        tally.record_envelope(MessageEnvelope(
            kind=MessageKind.PUBLISH, payload_bytes=100))
        assert tally.count(MessageKind.PUBLISH) == 2
        assert tally.total_bytes() == 216

"""Tests for the DHT-backed deployment of the mechanism."""

import pytest

from repro.core import ReputationConfig
from repro.dht import DHTBackedMechanism, MessageKind
from repro.simulator import (FileSharingSimulation, ScenarioSpec,
                             SimulationConfig)

DAY = 24 * 3600.0
PURE_EXPLICIT = ReputationConfig(eta=0.0, rho=1.0)


@pytest.fixture
def mechanism():
    return DHTBackedMechanism(PURE_EXPLICIT, record_ttl=10 * DAY)


class TestSignalsFlowToOverlay:
    def test_vote_is_published_to_the_dht(self, mechanism):
        mechanism.record_vote("alice", "f1", 0.9, timestamp=1.0)
        retrieved = mechanism.overlay.retrieve("alice", "f1", now=2.0)
        assert retrieved.evaluations == {"alice": pytest.approx(0.9)}

    def test_download_publishes_holdership(self, mechanism):
        mechanism.record_download("alice", "bob", "f1", 100.0, timestamp=1.0)
        retrieved = mechanism.overlay.retrieve("bob", "f1", now=2.0)
        assert "alice" in retrieved.owners

    def test_users_auto_register_as_dht_nodes(self, mechanism):
        mechanism.record_vote("alice", "f1", 0.9)
        mechanism.record_download("carol", "dave", "f2", 1.0)
        for user in ("alice", "carol", "dave"):
            assert mechanism.overlay.network.has_node(user)

    def test_deletion_depresses_published_evaluation(self):
        # Default config blends implicit and explicit: deleting the file
        # zeroes the implicit channel, dragging the published value down.
        mechanism = DHTBackedMechanism(ReputationConfig(),
                                       record_ttl=10 * DAY)
        mechanism.record_retention("alice", "fake", 20 * DAY, timestamp=1.0)
        mechanism.record_vote("alice", "fake", 0.9, timestamp=1.0)
        before = mechanism.overlay.retrieve("alice", "fake",
                                            now=2.0).evaluations["alice"]
        mechanism.record_deletion("alice", "fake", timestamp=3.0)
        after = mechanism.overlay.retrieve("alice", "fake",
                                           now=4.0).evaluations["alice"]
        assert after < before


class TestFileScoreOverDHT:
    def test_score_uses_retrievable_evaluations(self, mechanism):
        # alice trusts bob (shared evaluations).
        for file_id in ("s1", "s2"):
            mechanism.record_vote("alice", file_id, 0.9, timestamp=1.0)
            mechanism.record_vote("bob", file_id, 0.9, timestamp=1.0)
        mechanism.record_vote("bob", "target", 0.8, timestamp=1.0)
        mechanism.refresh()
        assert mechanism.file_score("alice", "target") == pytest.approx(0.8)

    def test_expired_evaluations_become_invisible(self):
        mechanism = DHTBackedMechanism(PURE_EXPLICIT, record_ttl=100.0)
        for file_id in ("s1", "s2"):
            mechanism.record_vote("alice", file_id, 0.9, timestamp=0.0)
            mechanism.record_vote("bob", file_id, 0.9, timestamp=0.0)
        mechanism.record_vote("bob", "target", 0.8, timestamp=0.0)
        # Time passes far beyond the TTL with no republication.
        mechanism.record_vote("carol", "other", 0.5, timestamp=10_000.0)
        assert mechanism.file_score("alice", "target") is None

    def test_republication_keeps_evaluations_alive(self):
        mechanism = DHTBackedMechanism(PURE_EXPLICIT, record_ttl=100.0)
        for file_id in ("s1", "s2"):
            mechanism.record_vote("alice", file_id, 0.9, timestamp=0.0)
            mechanism.record_vote("bob", file_id, 0.9, timestamp=0.0)
        mechanism.record_vote("bob", "target", 0.8, timestamp=0.0)
        mechanism.record_vote("carol", "other", 0.5, timestamp=90.0)
        mechanism.refresh()  # republishes everything at now=90
        mechanism.record_vote("carol", "other2", 0.5, timestamp=150.0)
        assert mechanism.file_score("alice", "target") is not None

    def test_unknown_file_scores_none(self, mechanism):
        assert mechanism.file_score("alice", "mystery") is None


class TestDeploymentInSimulator:
    def test_full_simulation_over_the_dht(self):
        duration = 1 * DAY
        config = SimulationConfig(
            scenario=ScenarioSpec(honest=15, polluters=3,
                                  honest_vote_probability=0.5),
            duration_seconds=duration, num_files=50, request_rate=0.01,
            seed=13)
        mechanism = DHTBackedMechanism(
            ReputationConfig(retention_saturation_seconds=duration / 3),
            record_ttl=duration)
        metrics = FileSharingSimulation(config, mechanism).run()

        assert metrics.total_requests > 0
        # The deployment actually moved messages.
        assert mechanism.overlay.tally.count(MessageKind.PUBLISH) > 100
        assert mechanism.overlay.tally.count(MessageKind.RETRIEVE) > 0
        # And every simulated peer became a DHT node.
        assert len(mechanism.overlay.network) >= 18

"""Tests for repro.dht.security: Section 4.2 attacks and defences."""

import pytest

from repro.dht import (DHTNetwork, EvaluationOverlay, KeyAuthority,
                       ProactiveExaminer, attempt_forged_publication,
                       make_mimic_responder)


@pytest.fixture
def overlay():
    overlay = EvaluationOverlay(DHTNetwork(), KeyAuthority(),
                                record_ttl=10_000.0)
    for index in range(24):
        overlay.register_user(f"user-{index:03d}")
    return overlay


@pytest.fixture
def catalog():
    return [f"file-{index:02d}" for index in range(12)]


class TestAttack1Forgery:
    def test_forged_publication_rejected(self, overlay):
        """Attack 1: forging another user's evaluation fails verification."""
        accepted = attempt_forged_publication(
            overlay, attacker_id="user-001", victim_id="user-002",
            file_id="file-x", forged_evaluation=0.0, now=0.0)
        assert not accepted

    def test_forged_record_counted_as_rejected(self, overlay):
        attempt_forged_publication(overlay, "user-001", "user-002",
                                   "file-x", 0.0, now=0.0)
        retrieved = overlay.retrieve("user-003", "file-x", now=0.5)
        assert retrieved.rejected >= 1

    def test_genuine_publication_unaffected(self, overlay):
        overlay.publish("user-002", "file-x", 0.9, now=0.0)
        attempt_forged_publication(overlay, "user-001", "user-002",
                                   "file-y", 0.0, now=0.0)
        retrieved = overlay.retrieve("user-003", "file-x", now=0.5)
        assert retrieved.evaluations == {"user-002": 0.9}


class TestAttack3MimicAndExamination:
    def _publish_honest_profile(self, overlay, user_id, catalog):
        for index, file_id in enumerate(catalog[:6]):
            overlay.publish(user_id, file_id, (index % 5) / 5.0, now=0.0)

    def test_honest_user_not_flagged(self, overlay, catalog):
        self._publish_honest_profile(overlay, "user-010", catalog)
        examiner = ProactiveExaminer(overlay, seed=5)
        report = examiner.examine("user-010", catalog)
        assert not report.flagged
        assert report.divergence == pytest.approx(0.0)

    def test_mimic_is_flagged(self, overlay, catalog):
        overlay.set_responder("user-011", make_mimic_responder(overlay))
        examiner = ProactiveExaminer(overlay, seed=5)
        report = examiner.examine("user-011", catalog)
        assert report.flagged

    def test_mimic_fools_direct_trust(self, overlay, catalog):
        """Why the attack matters: the mimic earns perfect file trust."""
        self._publish_honest_profile(overlay, "user-010", catalog)
        overlay.set_responder("user-011", make_mimic_responder(overlay))
        rm = overlay.compute_reputation_matrix("user-010", ["user-011"])
        assert rm.get("user-010", "user-011") == pytest.approx(1.0)

    def test_empty_list_user_not_flagged(self, overlay, catalog):
        examiner = ProactiveExaminer(overlay, seed=5)
        report = examiner.examine("user-015", catalog)
        assert not report.flagged

    def test_probe_identities_are_fresh(self, overlay, catalog):
        examiner = ProactiveExaminer(overlay, seed=5)
        examiner.examine("user-010", catalog)
        examiner.examine("user-012", catalog)
        probes = [user for user in ("__probe-0001", "__probe-0002",
                                    "__probe-0003", "__probe-0004")
                  if overlay.network.has_node(user)]
        assert len(probes) == 4

    def test_threshold_validation(self, overlay):
        with pytest.raises(ValueError):
            ProactiveExaminer(overlay, divergence_threshold=2.0)
        with pytest.raises(ValueError):
            ProactiveExaminer(overlay, overlap_threshold=-0.5)

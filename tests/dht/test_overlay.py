"""Tests for repro.dht.overlay_service: the Section 4.1 six-step framework."""

import pytest

from repro.core import ReputationConfig
from repro.dht import (DHTNetwork, EvaluationOverlay, KeyAuthority,
                       MessageKind)

PURE_EXPLICIT = ReputationConfig(eta=0.0, rho=1.0)


@pytest.fixture
def overlay():
    overlay = EvaluationOverlay(DHTNetwork(), KeyAuthority(),
                                config=PURE_EXPLICIT, replication=2,
                                record_ttl=1000.0)
    for index in range(32):
        overlay.register_user(f"user-{index:03d}")
    return overlay


class TestPublication:
    def test_publish_then_retrieve(self, overlay):
        overlay.publish("user-001", "file-x", 0.8, now=0.0)
        retrieved = overlay.retrieve("user-002", "file-x", now=1.0)
        assert retrieved.evaluations == {"user-001": 0.8}
        assert "user-001" in retrieved.owners

    def test_index_only_publication_has_no_evaluation(self, overlay):
        overlay.publish_index_only("user-001", "file-x", now=0.0)
        retrieved = overlay.retrieve("user-002", "file-x", now=1.0)
        assert retrieved.evaluations == {}
        assert retrieved.owners == ["user-001"]

    def test_republish_refreshes_expiry(self, overlay):
        overlay.publish("user-001", "file-x", 0.8, now=0.0)
        overlay.republish_all("user-001", now=900.0)
        retrieved = overlay.retrieve("user-002", "file-x", now=1500.0)
        assert retrieved.evaluations == {"user-001": 0.8}

    def test_records_expire_without_republication(self, overlay):
        overlay.publish("user-001", "file-x", 0.8, now=0.0)
        retrieved = overlay.retrieve("user-002", "file-x", now=2000.0)
        assert retrieved.evaluations == {}

    def test_update_replaces_evaluation(self, overlay):
        overlay.publish("user-001", "file-x", 0.8, now=0.0)
        overlay.publish("user-001", "file-x", 0.2, now=10.0)
        retrieved = overlay.retrieve("user-002", "file-x", now=11.0)
        assert retrieved.evaluations == {"user-001": 0.2}

    def test_replication_survives_single_failure(self, overlay):
        overlay.publish("user-001", "file-x", 0.8, now=0.0)
        from repro.dht import hash_key
        primary = overlay.network.owner_of(hash_key("file:file-x"))
        overlay.network.fail(primary.user_id)
        retrieved = overlay.retrieve("user-002", "file-x", now=1.0)
        assert retrieved.evaluations == {"user-001": 0.8}

    def test_local_list_tracks_publications(self, overlay):
        overlay.publish("user-001", "f1", 0.8, now=0.0)
        overlay.publish("user-001", "f2", 0.3, now=0.0)
        assert overlay.local_list("user-001") == {"f1": 0.8, "f2": 0.3}


class TestMessageCosts:
    def test_publish_uses_exactly_one_lookup(self, overlay):
        """The paper's claim: evaluations piggyback on index publication,
        costing no additional lookup messages."""
        before = overlay.tally.count(MessageKind.LOOKUP)
        overlay.publish("user-001", "file-x", 0.8, now=0.0)
        assert overlay.tally.count(MessageKind.LOOKUP) == before + 1

    def test_index_only_costs_the_same_lookups(self, overlay):
        overlay.publish("user-001", "file-a", 0.8, now=0.0)
        with_eval = overlay.tally.count(MessageKind.LOOKUP)
        overlay.publish_index_only("user-001", "file-b", now=0.0)
        assert overlay.tally.count(MessageKind.LOOKUP) == with_eval + 1

    def test_evaluation_increases_bytes_not_messages(self, overlay):
        overlay.publish_index_only("user-001", "file-a", now=0.0)
        bare_bytes = overlay.tally.total_bytes()
        bare_lookups = overlay.tally.count(MessageKind.LOOKUP)
        bare_publishes = overlay.tally.count(MessageKind.PUBLISH)
        overlay.publish("user-002", "file-b", 0.5, now=0.0)
        eval_bytes = overlay.tally.total_bytes() - bare_bytes
        # Same number of lookups and publish messages, strictly more bytes.
        assert overlay.tally.count(MessageKind.LOOKUP) == 2 * bare_lookups
        assert overlay.tally.count(MessageKind.PUBLISH) == 2 * bare_publishes
        assert eval_bytes > bare_bytes

    def test_fetch_evaluation_list_counted(self, overlay):
        overlay.fetch_evaluation_list("user-001", "user-002")
        assert overlay.tally.count(MessageKind.EVALUATION_LIST) == 1


class TestReputationPipeline:
    def _publish_profiles(self, overlay):
        # user-010 and user-011 agree; user-012 disagrees with both.
        for suffix, value in (("a", 0.9), ("b", 0.8), ("c", 0.1)):
            overlay.publish("user-010", f"shared-{suffix}", value, now=0.0)
            overlay.publish("user-011", f"shared-{suffix}", value, now=0.0)
            overlay.publish("user-012", f"shared-{suffix}", 1.0 - value, now=0.0)

    def test_step4_reputation_matrix(self, overlay):
        self._publish_profiles(overlay)
        rm = overlay.compute_reputation_matrix(
            "user-010", ["user-011", "user-012"])
        assert rm.get("user-010", "user-011") > rm.get("user-010", "user-012")

    def test_step5_file_reputation(self, overlay):
        self._publish_profiles(overlay)
        overlay.publish("user-011", "new-file", 0.95, now=0.0)
        overlay.publish("user-012", "new-file", 0.05, now=0.0)
        score, retrieved = overlay.file_reputation("user-010", "new-file",
                                                   now=1.0)
        assert score is not None
        # The agreeing user's praise outweighs the disagreeing user's pan.
        assert score > 0.5
        assert set(retrieved.evaluations) == {"user-011", "user-012"}

    def test_step6_service_differentiation(self, overlay):
        self._publish_profiles(overlay)
        trusted = overlay.service_level("user-010", "user-011")
        stranger = overlay.service_level("user-010", "user-025")
        assert trusted.bandwidth_quota > stranger.bandwidth_quota

    def test_responder_override(self, overlay):
        overlay.set_responder("user-020", lambda querier: {"x": 1.0})
        assert overlay.fetch_evaluation_list("anyone", "user-020") == {"x": 1.0}


class TestMaintenance:
    def test_expire_all_sweeps_every_node(self, overlay):
        overlay.publish("user-001", "file-x", 0.8, now=0.0)
        removed = overlay.expire_all(now=5000.0)
        assert removed >= 1
        retrieved = overlay.retrieve("user-002", "file-x", now=5000.0)
        assert retrieved.evaluations == {}

    def test_replication_validation(self):
        with pytest.raises(ValueError):
            EvaluationOverlay(DHTNetwork(), KeyAuthority(), replication=0)

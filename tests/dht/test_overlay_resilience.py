"""Tests for the overlay's graceful degradation, quorum reads and repair."""

import pytest

from repro.core import ReputationConfig
from repro.dht import (DHTNetwork, EvaluationOverlay, FaultPlan, KeyAuthority,
                       RetryPolicy, hash_key)

PURE_EXPLICIT = ReputationConfig(eta=0.0, rho=1.0)


def _overlay(faults=None, replication=3, **kwargs):
    overlay = EvaluationOverlay(DHTNetwork(), KeyAuthority(),
                                config=PURE_EXPLICIT,
                                replication=replication,
                                record_ttl=100_000.0, faults=faults,
                                **kwargs)
    for index in range(24):
        overlay.register_user(f"user-{index:03d}")
    return overlay


class TestDefaultPathUnchanged:
    def test_retrieval_is_complete_single_replica(self):
        overlay = _overlay()
        overlay.publish("user-001", "file-x", 0.8, now=0.0)
        retrieved = overlay.retrieve("user-002", "file-x", now=1.0)
        assert retrieved.complete
        assert retrieved.replicas_contacted == 1
        assert retrieved.quorum == 1
        assert retrieved.evaluations == {"user-001": 0.8}

    def test_availability_is_perfect_without_faults(self):
        overlay = _overlay()
        overlay.publish("user-001", "file-x", 0.8, now=0.0)
        for _ in range(5):
            overlay.retrieve("user-002", "file-x", now=1.0)
        assert overlay.availability == 1.0
        assert overlay.tally.drops == 0
        assert overlay.tally.retries == 0

    def test_inactive_plan_behaves_like_none(self):
        plain = _overlay()
        gated = _overlay(faults=FaultPlan.none())
        for overlay in (plain, gated):
            overlay.publish("user-001", "file-x", 0.8, now=0.0)
        a = plain.retrieve("user-002", "file-x", now=1.0)
        b = gated.retrieve("user-002", "file-x", now=1.0)
        assert a == b

    def test_read_quorum_validation(self):
        with pytest.raises(ValueError):
            EvaluationOverlay(DHTNetwork(), KeyAuthority(), replication=2,
                              read_quorum=3)


class TestDegradedRetrieval:
    def test_quorum_read_merges_replicas(self):
        overlay = _overlay(faults=FaultPlan(seed=1, drop_probability=0.05))
        overlay.publish("user-001", "file-x", 0.8, now=0.0)
        retrieved = overlay.retrieve("user-002", "file-x", now=1.0)
        assert retrieved.quorum == 2  # majority of replication=3
        assert retrieved.replicas_contacted >= 1
        if retrieved.complete:
            assert retrieved.evaluations == {"user-001": 0.8}

    def test_partition_returns_partial_not_raise(self):
        overlay = _overlay(replication=2)
        overlay.publish("user-001", "file-x", 0.8, now=0.0)
        # Partition the requester away from everyone else.
        plan = FaultPlan(partitions={"user-002": 1})
        overlay.faults = plan
        retrieved = overlay.retrieve("user-002", "file-x", now=1.0)
        assert not retrieved.complete
        assert retrieved.evaluations == {}
        assert overlay.availability < 1.0

    def test_heavy_loss_degrades_but_never_raises(self):
        overlay = _overlay(
            faults=FaultPlan(drop_probability=0.8, seed=3),
            retry_policy=RetryPolicy(max_attempts=1, retry_budget=1))
        overlay.publish("user-001", "file-x", 0.8, now=0.0)
        for probe in range(10):
            retrieved = overlay.retrieve(f"user-{probe:03d}", "file-x",
                                         now=1.0)
            assert retrieved.quorum >= 1
        assert overlay.retrievals_total == 10
        assert overlay.availability < 1.0

    def test_fresher_replica_wins_merge(self):
        # Latency-only plan: activates the quorum-read merge path without
        # dropping anything, so the merge itself is what's under test.
        overlay = _overlay(faults=FaultPlan(base_latency_seconds=0.001,
                                            seed=2))
        overlay.publish("user-001", "file-x", 0.3, now=0.0)
        overlay.publish("user-001", "file-x", 0.9, now=50.0)
        retrieved = overlay.retrieve("user-002", "file-x", now=60.0)
        assert retrieved.evaluations == {"user-001": 0.9}


class TestReplicaRepair:
    def test_repair_restores_replication_after_failure(self):
        overlay = _overlay()
        overlay.publish("user-001", "file-x", 0.8, now=0.0)
        key = hash_key("file:file-x")
        primary = overlay.network.owner_of(key)
        # Kill the whole original replica set except one holder.
        holders = overlay.network.replica_nodes(key, overlay.replication)
        for node in holders[:-1]:
            if node.user_id != "user-001":
                overlay.network.fail(node.user_id)
        repaired = overlay.repair_replicas(now=1.0)
        assert repaired > 0
        assert overlay.tally.repairs == repaired
        holders_after = [
            node for node in overlay.network.replica_nodes(
                key, overlay.replication)
            if node.storage.contains(key, "user-001", 1.0)]
        assert len(holders_after) == overlay.replication

    def test_repair_preserves_ttl_horizon(self):
        overlay = _overlay()
        overlay.publish("user-001", "file-x", 0.8, now=0.0)
        key = hash_key("file:file-x")
        before = {node.user_id: node.storage.get_owner(key, "user-001", 1.0)
                  for node in overlay.network.replica_nodes(key, 3)}
        overlay.repair_replicas(now=5000.0)
        for node in overlay.network.replica_nodes(key, overlay.replication):
            record = node.storage.get_owner(key, "user-001", 5000.0)
            if record is not None:
                assert record.stored_at == 0.0  # never re-stamped

    def test_repair_skips_expired_records(self):
        overlay = _overlay()
        overlay.publish("user-001", "file-x", 0.8, now=0.0)
        repaired = overlay.repair_replicas(now=200_000.0)  # past the TTL
        assert repaired == 0

    def test_repaired_records_are_retrievable(self):
        overlay = _overlay()
        overlay.publish("user-001", "file-x", 0.8, now=0.0)
        key = hash_key("file:file-x")
        for node in list(overlay.network.replica_nodes(key, 2)):
            if node.user_id != "user-001":
                overlay.network.fail(node.user_id)
        overlay.repair_replicas(now=1.0)
        retrieved = overlay.retrieve("user-005", "file-x", now=2.0)
        assert retrieved.evaluations == {"user-001": 0.8}

"""Tests for repro.dht.id_space."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dht import ID_BITS, ID_SPACE, distance, hash_key, in_interval

ids = st.integers(min_value=0, max_value=ID_SPACE - 1)


class TestHashKey:
    def test_deterministic(self):
        assert hash_key("abc") == hash_key("abc")

    def test_distinct_inputs_differ(self):
        assert hash_key("abc") != hash_key("abd")

    def test_within_space(self):
        assert 0 <= hash_key("anything") < ID_SPACE

    def test_160_bits(self):
        assert ID_SPACE == 2 ** 160
        assert ID_BITS == 160


class TestDistance:
    def test_zero_distance_to_self(self):
        assert distance(42, 42) == 0

    def test_clockwise_only(self):
        assert distance(10, 20) == 10
        assert distance(20, 10) == ID_SPACE - 10

    @given(a=ids, b=ids)
    def test_distance_in_range(self, a, b):
        assert 0 <= distance(a, b) < ID_SPACE

    @given(a=ids, b=ids)
    def test_round_trip_sums_to_space(self, a, b):
        if a != b:
            assert distance(a, b) + distance(b, a) == ID_SPACE


class TestInInterval:
    def test_simple_interval(self):
        assert in_interval(5, 1, 10)
        assert not in_interval(0, 1, 10)
        assert not in_interval(1, 1, 10)  # start exclusive
        assert not in_interval(10, 1, 10)  # end exclusive by default

    def test_inclusive_end(self):
        assert in_interval(10, 1, 10, inclusive_end=True)

    def test_wrap_around(self):
        near_top = ID_SPACE - 5
        assert in_interval(ID_SPACE - 1, near_top, 10)
        assert in_interval(3, near_top, 10)
        assert not in_interval(100, near_top, 10)

    def test_full_ring_when_start_equals_end(self):
        assert in_interval(5, 7, 7)
        assert not in_interval(7, 7, 7)
        assert in_interval(7, 7, 7, inclusive_end=True)

    @given(value=ids, start=ids, end=ids)
    def test_exclusive_interval_never_contains_start(self, value, start, end):
        if value == start:
            assert not in_interval(value, start, end)

    @given(start=ids, end=ids)
    def test_end_membership_iff_inclusive(self, start, end):
        if start != end:
            assert in_interval(end, start, end, inclusive_end=True)
            assert not in_interval(end, start, end, inclusive_end=False)

"""Kill-point matrix: die at EVERY write/fsync boundary, always recover.

A clean journalled run is profiled once to count its write() and fsync()
operations; the matrix then re-runs the identical workload once per
boundary with a :class:`CrashPlan` that kills exactly there.  After every
crash, recovery must produce a state exactly equal to a from-scratch
replay of the WAL's surviving record prefix — no exception, no silent
loss beyond the torn tail.  (The ``crash-recovery`` CI job runs this
with ``REPRO_CHECK_INVARIANTS=1`` for in-refresh self-checks on top.)
"""

import pytest

from repro.core import MultiDimensionalReputationSystem
from repro.core.durability import (CrashPlan, DurabilityManager, FaultyFile,
                                   SimulatedCrash, recover)

from tests.durability.helpers import assert_identical, drive, replay_reference

STEPS = 9  # small on purpose: the matrix runs the workload ~dozens of times


def _run(directory, plan=None, fsync="batch"):
    """One journalled workload run; returns (faulty_file, crashed)."""
    directory.mkdir(parents=True, exist_ok=True)
    faulty = FaultyFile(directory / "journal.wal", plan)
    system = MultiDimensionalReputationSystem()
    try:
        # Inside the try: the very first write (the WAL header) happens
        # in the constructor and is a legitimate kill point too.
        manager = DurabilityManager(system, directory, fsync=fsync,
                                    fileobj=faulty)
        manager.attach()
        drive(system, STEPS)
        manager.sync()
        drive(system, STEPS, start=STEPS)
        manager.close(final_snapshot=True)
    except SimulatedCrash:
        return faulty, True
    return faulty, False


def _assert_recovers_prefix(directory, crashed):
    """Recovery after a kill yields exactly the WAL's valid prefix."""
    try:
        result = recover(directory)
    except FileNotFoundError:
        # Killed before the baseline generation became durable: there is
        # no state to recover — and none was ever claimed durable.
        assert crashed
        assert not list(directory.glob("snapshot-*.json"))
        return
    assert result.wal_scan is not None
    assert_identical(result.system, replay_reference(result.wal_scan.records))


def _boundary_counts(tmp_path):
    """(writes, fsyncs) of one clean run per fsync policy."""
    counts = {}
    for policy in ("batch", "always"):
        faulty, crashed = _run(tmp_path / f"clean-{policy}", fsync=policy)
        assert not crashed
        counts[policy] = (faulty.writes, faulty.fsyncs)
    return counts


def test_clean_control_run_recovers_identically(tmp_path):
    directory = tmp_path / "control"
    _, crashed = _run(directory)
    assert not crashed
    result = recover(directory)
    assert result.truncated_tail_bytes == 0
    assert_identical(result.system, replay_reference(result.wal_scan.records))


@pytest.mark.parametrize("fault", ["before", "after", "torn"])
def test_kill_at_every_write(tmp_path, fault):
    writes, _ = _boundary_counts(tmp_path)["batch"]
    assert writes > 10
    for n in range(1, writes + 1):
        plan = {"before": CrashPlan(crash_before_write=n),
                "after": CrashPlan(crash_after_write=n),
                "torn": CrashPlan(torn_write_at=n)}[fault]
        directory = tmp_path / f"{fault}-w{n}"
        _, crashed = _run(directory, plan)
        assert crashed
        _assert_recovers_prefix(directory, crashed)


@pytest.mark.parametrize("fsync,fault", [
    ("batch", "before"), ("batch", "after"),
    ("always", "before"), ("always", "after"),
])
def test_kill_at_every_fsync(tmp_path, fsync, fault):
    _, fsyncs = _boundary_counts(tmp_path)[fsync]
    assert fsyncs > (2 if fsync == "batch" else 10)
    for n in range(1, fsyncs + 1):
        plan = (CrashPlan(crash_before_fsync=n) if fault == "before"
                else CrashPlan(crash_after_fsync=n))
        directory = tmp_path / f"{fsync}-{fault}-f{n}"
        _, crashed = _run(directory, plan, fsync=fsync)
        assert crashed
        _assert_recovers_prefix(directory, crashed)


def test_torn_write_single_byte_lands(tmp_path):
    """The meanest tear: exactly one byte of a record frame survives."""
    directory = tmp_path / "onebyte"
    _, crashed = _run(directory, CrashPlan(torn_write_at=5,
                                           torn_write_keep=1))
    assert crashed
    _assert_recovers_prefix(directory, crashed)


def test_crash_then_resume_then_crash_again(tmp_path):
    """Recovery → repaired WAL → resumed journalling → second crash →
    recovery again.  The full crash-restart-crash lifecycle."""
    directory = tmp_path / "twice"
    _, crashed = _run(directory, CrashPlan(torn_write_at=8))
    assert crashed
    first = recover(directory, repair=True)
    assert first.repaired or first.truncated_tail_bytes == 0

    # Resume journalling from the recovered state and crash again.
    faulty = FaultyFile(directory / "journal.wal",
                        CrashPlan(crash_after_write=4))
    manager = DurabilityManager(first.system, directory,
                                start_seq=first.last_seq, fileobj=faulty)
    with pytest.raises(SimulatedCrash):
        manager.attach()
        drive(first.system, STEPS, start=2 * STEPS)

    second = recover(directory)
    assert second.last_seq > first.last_seq
    assert_identical(second.system,
                     replay_reference(second.wal_scan.records))

"""Tests for snapshot generations: atomicity, pruning, quarantine."""

import json

import pytest

from repro.core import MultiDimensionalReputationSystem
from repro.core.durability import SnapshotStore, flip_byte, truncate_file


def _system(marker: float = 0.9):
    system = MultiDimensionalReputationSystem()
    system.record_vote("alice", "f1", marker, timestamp=1.0)
    system.record_download("alice", "bob", "f1", 1e6, timestamp=2.0)
    return system


class TestWrite:
    def test_write_names_generation_by_seq(self, tmp_path):
        store = SnapshotStore(tmp_path)
        path = store.write(_system(), last_seq=17)
        assert path.name == f"snapshot-{17:020d}.json"
        assert json.loads(path.read_text())["wal"]["last_seq"] == 17

    def test_no_temp_file_left_behind(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.write(_system(), last_seq=1)
        assert list(tmp_path.glob("*.tmp")) == []

    def test_prunes_to_keep_count(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=2)
        for seq in (1, 2, 3, 4):
            store.write(_system(), last_seq=seq)
        seqs = [seq for seq, _ in store.generations()]
        assert seqs == [3, 4]

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="keep"):
            SnapshotStore(tmp_path, keep=0)


class TestLoad:
    def test_loads_newest_generation(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.write(_system(0.2), last_seq=1)
        store.write(_system(0.9), last_seq=2)
        loaded = store.load_latest()
        assert loaded.last_seq == 2
        vote = loaded.system.evaluations.get("alice", "f1")
        assert vote.explicit == 0.9

    def test_empty_directory_loads_none(self, tmp_path):
        assert SnapshotStore(tmp_path).load_latest() is None
        assert SnapshotStore(tmp_path / "missing").load_latest() is None

    def test_corrupt_latest_falls_back(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.write(_system(0.2), last_seq=1)
        newest = store.write(_system(0.9), last_seq=2)
        flip_byte(newest, 300)
        loaded = store.load_latest()
        assert loaded.last_seq == 1
        assert loaded.system.evaluations.get("alice", "f1").explicit == 0.2

    def test_corrupt_generation_is_quarantined(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.write(_system(0.2), last_seq=1)
        newest = store.write(_system(0.9), last_seq=2)
        flip_byte(newest, 300)
        loaded = store.load_latest()
        assert len(loaded.quarantined) == 1
        entry = loaded.quarantined[0]
        assert entry.quarantined.name.endswith(".corrupt")
        assert entry.quarantined.exists()
        assert not newest.exists()
        # A quarantined file is never re-read as a generation.
        assert [seq for seq, _ in store.generations()] == [1]

    def test_truncated_json_is_quarantined(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.write(_system(0.2), last_seq=1)
        newest = store.write(_system(0.9), last_seq=2)
        truncate_file(newest, newest.stat().st_size // 2)
        loaded = store.load_latest()
        assert loaded.last_seq == 1
        assert len(loaded.quarantined) == 1

    def test_all_generations_corrupt_raises(self, tmp_path):
        store = SnapshotStore(tmp_path)
        first = store.write(_system(0.2), last_seq=1)
        second = store.write(_system(0.9), last_seq=2)
        flip_byte(first, 300)
        flip_byte(second, 300)
        with pytest.raises(ValueError, match="every snapshot generation"):
            store.load_latest()
        # Both preserved for post-mortem, neither trusted.
        assert len(list(tmp_path.glob("*.corrupt"))) == 2

    def test_checksum_catches_silent_field_edit(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.write(_system(0.2), last_seq=1)
        newest = store.write(_system(0.9), last_seq=2)
        data = json.loads(newest.read_text())
        data["auto_refresh"] = not data["auto_refresh"]
        newest.write_text(json.dumps(data, indent=1, sort_keys=True))
        loaded = store.load_latest()
        assert loaded.last_seq == 1
        assert "checksum" in loaded.quarantined[0].reason

"""WAL shard annotations: routing metadata on row-local journal records.

A sharded system's journal stamps each row-local record with the shard of
the peer whose state it mutates (``repro.core.shard.shard_for_record``);
unsharded systems must keep writing byte-identical records to what earlier
builds produced — no ``shard`` key at all.  Recovery counts replays per
shard into ``RecoveryResult.replayed_by_shard``.
"""

from repro.core import MultiDimensionalReputationSystem, ReputationConfig
from repro.core.durability import DurabilityManager, read_wal, recover
from repro.core.shard import ShardMap, shard_owner
from tests.durability.helpers import drive

SHARDS = 4


def _journalled_run(tmp_path, config=None, steps=30, subdir="state"):
    directory = tmp_path / subdir
    system = MultiDimensionalReputationSystem(
        ReputationConfig() if config is None else config)
    with DurabilityManager(system, directory, snapshot_every=0) as manager:
        drive(system, steps)
        last_seq = manager.last_seq
    return system, directory, last_seq


class TestAnnotation:
    def test_sharded_records_carry_owner_shard(self, tmp_path):
        config = ReputationConfig(shards=SHARDS)
        _system, directory, _seq = _journalled_run(tmp_path, config)
        shard_map = ShardMap(SHARDS)
        records = read_wal(directory / "journal.wal").records
        assert records
        annotated = 0
        for record in records:
            owner = shard_owner(record.kind, record.payload)
            if owner is None:
                assert "shard" not in record.payload
            else:
                assert record.payload["shard"] == shard_map.shard_of(owner)
                annotated += 1
        assert annotated > 0

    def test_unsharded_records_stay_clean(self, tmp_path):
        _system, directory, _seq = _journalled_run(tmp_path)
        records = read_wal(directory / "journal.wal").records
        assert records
        assert all("shard" not in record.payload for record in records)


class TestRecovery:
    def test_sharded_recovery_counts_by_shard(self, tmp_path):
        config = ReputationConfig(shards=SHARDS)
        live, directory, _seq = _journalled_run(tmp_path, config)
        result = recover(directory)
        by_shard = result.replayed_by_shard
        assert by_shard
        assert all(0 <= shard < SHARDS for shard in by_shard)
        records = read_wal(directory / "journal.wal").records
        owned = sum(1 for r in records if "shard" in r.payload)
        assert sum(by_shard.values()) == owned
        # And the recovered sharded system is the live one, bit for bit.
        live.recompute()
        live.refresh_view()
        result.system.recompute()
        result.system.refresh_view()
        assert result.system.pipeline.checksums() \
            == live.pipeline.checksums()

    def test_unsharded_recovery_has_empty_shard_counts(self, tmp_path):
        _live, directory, _seq = _journalled_run(tmp_path)
        result = recover(directory)
        assert result.replayed_by_shard == {}

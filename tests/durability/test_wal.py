"""Tests for the binary WAL format: framing, scanning, corruption."""

import json
import struct

import pytest

from repro.core.durability import (WalWriter, encode_record, read_wal,
                                   scan_wal, truncate_wal)
from repro.core.durability.wal import (FRAME_OVERHEAD, HEADER_SIZE,
                                       MAX_RECORD_BYTES, wal_header)


def _write(tmp_path, records, fsync="batch"):
    path = tmp_path / "journal.wal"
    with WalWriter(path, fsync=fsync) as writer:
        for kind, payload in records:
            writer.append(kind, payload)
    return path


SAMPLE = [
    ("eval.vote", {"user": "alice", "file": "f1", "vote": 0.9,
                   "timestamp": 10.0}),
    ("ledger.download", {"downloader": "alice", "uploader": "bob",
                         "file": "f1", "size": 5e8, "timestamp": 11.0}),
    ("user.rate", {"rater": "alice", "ratee": "bob", "rating": 0.7}),
]


class TestRoundTrip:
    def test_records_round_trip(self, tmp_path):
        path = _write(tmp_path, SAMPLE)
        scan = read_wal(path)
        assert not scan.truncated
        assert scan.reason is None
        assert [r.kind for r in scan.records] == [k for k, _ in SAMPLE]
        assert [r.payload for r in scan.records] == [p for _, p in SAMPLE]

    def test_sequences_are_monotonic_from_one(self, tmp_path):
        scan = read_wal(_write(tmp_path, SAMPLE))
        assert [r.seq for r in scan.records] == [1, 2, 3]
        assert scan.last_seq == 3

    def test_append_resumes_after_reopen(self, tmp_path):
        path = _write(tmp_path, SAMPLE)
        with WalWriter(path, start_seq=read_wal(path).last_seq) as writer:
            writer.append("eval.vote", {"user": "carol", "file": "f2",
                                        "vote": 0.5, "timestamp": 12.0})
        scan = read_wal(path)
        assert [r.seq for r in scan.records] == [1, 2, 3, 4]
        assert not scan.truncated

    def test_empty_log_is_header_only(self, tmp_path):
        path = tmp_path / "journal.wal"
        WalWriter(path).close()
        scan = read_wal(path)
        assert scan.records == []
        assert scan.valid_bytes == HEADER_SIZE
        assert not scan.truncated

    def test_encoding_is_deterministic(self):
        payload = {"b": 2.0, "a": "x", "c": 1}
        assert encode_record(7, "k", payload) == \
            encode_record(7, "k", dict(reversed(list(payload.items()))))

    def test_fast_encoder_matches_canonical_json(self):
        payload = {"user": "ué\"x", "vote": 0.125, "n": 3,
                   "flag": True, "none": None}
        frame = encode_record(1, "eval.vote", payload)
        body = frame[FRAME_OVERHEAD + 8:].decode("utf-8")
        assert body == json.dumps({"kind": "eval.vote", "data": payload},
                                  sort_keys=True, separators=(",", ":"))


class TestCorruption:
    """Every corruption mode must yield the longest valid prefix, never
    an exception."""

    def test_torn_tail_truncates_cleanly(self, tmp_path):
        path = _write(tmp_path, SAMPLE)
        clean = read_wal(path)
        data = path.read_bytes()
        torn = data[:clean.records[-1].offset + 5]
        path.write_bytes(torn)
        scan = read_wal(path)
        assert scan.truncated
        assert len(scan.records) == 2
        assert scan.valid_bytes == clean.records[-1].offset

    def test_bit_flip_stops_at_crc(self, tmp_path):
        path = _write(tmp_path, SAMPLE)
        data = bytearray(path.read_bytes())
        second = read_wal(path).records[1]
        data[second.offset + FRAME_OVERHEAD + 9] ^= 0x40
        path.write_bytes(bytes(data))
        scan = read_wal(path)
        assert scan.truncated
        assert scan.reason == "CRC mismatch"
        assert len(scan.records) == 1

    def test_garbage_length_prefix_rejected(self, tmp_path):
        path = _write(tmp_path, SAMPLE[:1])
        with open(path, "ab") as handle:
            handle.write(struct.pack("<II", MAX_RECORD_BYTES + 1, 0))
            handle.write(b"\x00" * 32)
        scan = read_wal(path)
        assert scan.truncated
        assert scan.reason == "implausible frame length"
        assert len(scan.records) == 1

    def test_sequence_gap_detected(self, tmp_path):
        path = tmp_path / "journal.wal"
        with open(path, "wb") as handle:
            handle.write(wal_header())
            handle.write(encode_record(1, "k", {"a": 1}))
            handle.write(encode_record(3, "k", {"a": 2}))
        scan = read_wal(path)
        assert scan.truncated
        assert "sequence gap" in scan.reason
        assert len(scan.records) == 1

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "journal.wal"
        path.write_bytes(b"NOTAWAL!" + b"\x00" * 16)
        scan = read_wal(path)
        assert scan.truncated
        assert scan.reason == "bad magic"
        assert scan.records == []

    def test_short_header_rejected(self, tmp_path):
        path = tmp_path / "journal.wal"
        path.write_bytes(b"REP")
        scan = read_wal(path)
        assert scan.truncated
        assert scan.reason == "short header"

    def test_undecodable_body_rejected(self, tmp_path):
        path = tmp_path / "journal.wal"
        import zlib
        body = struct.pack("<Q", 1) + b"\xff\xfe not json"
        with open(path, "wb") as handle:
            handle.write(wal_header())
            handle.write(struct.pack("<II", len(body), zlib.crc32(body)))
            handle.write(body)
        scan = read_wal(path)
        assert scan.truncated
        assert "body" in scan.reason

    def test_truncate_wal_repairs_in_place(self, tmp_path):
        path = _write(tmp_path, SAMPLE)
        data = path.read_bytes()
        path.write_bytes(data + b"\xde\xad\xbe\xef")
        scan = read_wal(path)
        assert scan.truncated
        removed = truncate_wal(path, scan)
        assert removed == 4
        healed = read_wal(path)
        assert not healed.truncated
        assert len(healed.records) == len(SAMPLE)

    def test_every_single_byte_flip_yields_prefix(self, tmp_path):
        """Exhaustive bit-rot: flipping ANY byte never crashes the scan
        and never corrupts the records before the flip point."""
        path = _write(tmp_path, SAMPLE)
        pristine = path.read_bytes()
        clean = scan_wal(pristine)
        for offset in range(len(pristine)):
            mangled = bytearray(pristine)
            mangled[offset] ^= 0xFF
            scan = scan_wal(bytes(mangled))
            # Valid records must be a strict prefix of the clean decode.
            decoded = [(r.seq, r.kind, r.payload) for r in scan.records]
            expected = [(r.seq, r.kind, r.payload)
                        for r in clean.records[:len(decoded)]]
            assert decoded == expected, f"divergence at byte {offset}"


class TestWriterValidation:
    def test_rejects_unknown_fsync_policy(self, tmp_path):
        with pytest.raises(ValueError, match="fsync"):
            WalWriter(tmp_path / "w.wal", fsync="sometimes")

    def test_rejects_append_after_close(self, tmp_path):
        writer = WalWriter(tmp_path / "w.wal")
        writer.close()
        with pytest.raises(ValueError, match="closed"):
            writer.append("k", {})

    def test_rejects_negative_start_seq(self, tmp_path):
        with pytest.raises(ValueError, match="start_seq"):
            WalWriter(tmp_path / "w.wal", start_seq=-1)

"""CLI end-to-end: crash a journalled simulate, recover, compare bytes.

The two headline determinism properties:

* a crashed run's WAL is a byte-prefix of the uninterrupted same-seed
  run's WAL (canonical record encoding + deterministic simulator);
* ``repro recover --out`` re-serialises the recovered state into exactly
  the bytes of the final snapshot generation.
"""

import json

import pytest

from repro.cli import main
from repro.core.durability import WAL_FILENAME, read_wal

_SIM = ["simulate", "--honest", "8", "--free-riders", "2",
        "--polluters", "2", "--catalog", "30", "--days", "0.25",
        "--request-rate", "0.02", "--seed", "5"]


def _simulate(wal_dir, extra=()):
    return main(_SIM + ["--wal-out", str(wal_dir)] + list(extra))


class TestSimulateWal:
    def test_run_journals_and_snapshots(self, tmp_path, capsys):
        directory = tmp_path / "state"
        assert _simulate(directory) == 0
        out = capsys.readouterr().out
        assert "journalled" in out
        scan = read_wal(directory / WAL_FILENAME)
        assert not scan.truncated
        assert scan.last_seq > 100
        assert list(directory.glob("snapshot-*.json"))

    def test_crash_at_exits_3_and_leaves_recoverable_state(
            self, tmp_path, capsys):
        directory = tmp_path / "crashed"
        code = _simulate(directory, ["--crash-at", "9000"])
        assert code == 3
        assert "crash" in capsys.readouterr().err.lower()
        assert main(["recover", str(directory)]) == 0

    def test_crashed_wal_is_byte_prefix_of_full_run(self, tmp_path):
        full, crashed = tmp_path / "full", tmp_path / "crashed"
        assert _simulate(full) == 0
        assert _simulate(crashed, ["--crash-at", "9000"]) == 3
        full_bytes = (full / WAL_FILENAME).read_bytes()
        crashed_bytes = (crashed / WAL_FILENAME).read_bytes()
        assert 0 < len(crashed_bytes) < len(full_bytes)
        assert full_bytes[:len(crashed_bytes)] == crashed_bytes

    def test_wal_out_requires_multidimensional(self, tmp_path, capsys):
        code = main(_SIM + ["--mechanism", "null",
                            "--wal-out", str(tmp_path / "x")])
        assert code == 2
        assert "multidimensional" in capsys.readouterr().err


class TestRecoverCommand:
    def test_recover_out_matches_final_snapshot_bytes(self, tmp_path,
                                                      capsys):
        directory = tmp_path / "state"
        assert _simulate(directory) == 0
        capsys.readouterr()
        out_path = tmp_path / "recovered.json"
        assert main(["recover", str(directory),
                     "--out", str(out_path)]) == 0
        newest = sorted(directory.glob("snapshot-*.json"))[-1]
        assert out_path.read_bytes() == newest.read_bytes()

    def test_recover_after_crash_replays_tail(self, tmp_path, capsys):
        directory = tmp_path / "crashed"
        assert _simulate(directory, ["--crash-at", "9000",
                                     "--snapshot-every", "50"]) == 3
        capsys.readouterr()
        assert main(["recover", str(directory), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["replayed_records"] > 0
        assert doc["last_seq"] == read_wal(directory / WAL_FILENAME).last_seq

    def test_recover_empty_directory_fails(self, tmp_path, capsys):
        assert main(["recover", str(tmp_path / "void")]) == 1
        assert "recover" in capsys.readouterr().err


class TestWalInspect:
    @pytest.fixture()
    def state(self, tmp_path):
        directory = tmp_path / "state"
        assert _simulate(directory) == 0
        return directory

    def test_counts_by_kind(self, state, capsys):
        capsys.readouterr()
        assert main(["wal-inspect", str(state)]) == 0
        out = capsys.readouterr().out
        assert "ledger.download" in out
        assert "records" in out

    def test_json_totals_match_scan(self, state, capsys):
        capsys.readouterr()
        assert main(["wal-inspect", str(state), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        scan = read_wal(state / WAL_FILENAME)
        assert doc["records"] == len(scan.records)
        assert doc["last_seq"] == scan.last_seq
        assert doc["truncated"] is False

    def test_flags_truncated_tail(self, state, capsys):
        wal = state / WAL_FILENAME
        wal.write_bytes(wal.read_bytes() + b"\xff\xff\xff")
        capsys.readouterr()
        assert main(["wal-inspect", str(state)]) == 0
        assert "TRUNCATED" in capsys.readouterr().out

"""End-to-end recovery tests: snapshot + WAL replay = exact state.

The assertions here are exact-equality on their own; running the suite
with ``REPRO_CHECK_INVARIANTS=1`` (the ``crash-recovery`` CI job does)
additionally self-checks every replayed refresh against a full rebuild.
"""

import pytest

from repro.core import MultiDimensionalReputationSystem
from repro.core.durability import (DurabilityManager, flip_byte, read_wal,
                                   recover, truncate_file)
from repro.obs.recorder import Recorder

from tests.durability.helpers import assert_identical, drive, replay_reference


def journalled_run(tmp_path, steps, snapshot_every=0, subdir="state"):
    system = MultiDimensionalReputationSystem()
    manager = DurabilityManager(system, tmp_path / subdir,
                                snapshot_every=snapshot_every)
    manager.attach()
    drive(system, steps)
    manager.maybe_snapshot()
    manager.close()
    return system, tmp_path / subdir


def live_reference(steps):
    """An unjournalled system fed the same event prefix."""
    system = MultiDimensionalReputationSystem()
    drive(system, steps)
    return system


class TestCleanRecovery:
    def test_recovery_is_bit_identical(self, tmp_path):
        live, directory = journalled_run(tmp_path, steps=30)
        result = recover(directory)
        assert result.replayed_records > 0
        assert result.truncated_tail_bytes == 0
        assert not result.quarantined
        assert_identical(result.system, live)

    def test_mid_run_snapshots_shorten_replay(self, tmp_path):
        live, directory = journalled_run(tmp_path, steps=30,
                                         snapshot_every=10)
        full_scan = read_wal(directory / "journal.wal")
        result = recover(directory)
        assert result.snapshot_seq > 0
        assert result.replayed_records < len(full_scan.records)
        assert result.last_seq == full_scan.last_seq
        assert_identical(result.system, live)

    def test_replay_reuses_ingest_path_checksums(self, tmp_path):
        """Replay must go through the same mutators, so the recovered
        document checksum equals an unjournalled run of the same events."""
        _, directory = journalled_run(tmp_path, steps=24)
        result = recover(directory)
        assert_identical(result.system, live_reference(24))

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="nothing to recover"):
            recover(tmp_path / "void")


class TestCorruptRecovery:
    def test_torn_tail_recovers_prefix(self, tmp_path):
        _, directory = journalled_run(tmp_path, steps=30)
        wal = directory / "journal.wal"
        scan = read_wal(wal)
        # Tear mid-way through the final record.
        truncate_file(wal, scan.records[-1].offset + 7)
        result = recover(directory)
        assert result.truncated_tail_bytes == 7
        assert result.truncation_reason is not None
        assert result.last_seq == scan.last_seq - 1
        assert not result.repaired

    def test_repair_truncates_the_tail(self, tmp_path):
        _, directory = journalled_run(tmp_path, steps=30)
        wal = directory / "journal.wal"
        scan = read_wal(wal)
        truncate_file(wal, scan.records[-1].offset + 7)
        result = recover(directory, repair=True)
        assert result.repaired
        healed = read_wal(wal)
        assert not healed.truncated
        assert healed.last_seq == result.last_seq

    def test_bit_flip_recovers_records_before_it(self, tmp_path):
        _, directory = journalled_run(tmp_path, steps=30)
        wal = directory / "journal.wal"
        scan = read_wal(wal)
        victim = scan.records[20]
        flip_byte(wal, victim.offset + victim.frame_bytes // 2)
        result = recover(directory)
        assert result.last_seq == scan.records[19].seq
        # Snapshot + tail replay must equal a pure from-scratch replay of
        # the surviving record prefix (no snapshot involved).
        assert_identical(result.system, replay_reference(scan.records[:20]))

    def test_corrupt_snapshot_falls_back_and_replays_further(self, tmp_path):
        live, directory = journalled_run(tmp_path, steps=30,
                                         snapshot_every=10)
        generations = sorted(directory.glob("snapshot-*.json"))
        flip_byte(generations[-1], 300)
        result = recover(directory)
        assert len(result.quarantined) == 1
        assert result.snapshot_seq < read_wal(directory / "journal.wal").last_seq
        assert_identical(result.system, live)

    def test_wal_missing_recovers_snapshot_only(self, tmp_path):
        live, directory = journalled_run(tmp_path, steps=12)
        # Force a final generation so the snapshot alone holds everything.
        system = MultiDimensionalReputationSystem()
        manager = DurabilityManager(system, tmp_path / "snaponly")
        manager.attach()
        drive(system, 12)
        manager.close(final_snapshot=True)
        (tmp_path / "snaponly" / "journal.wal").unlink()
        result = recover(tmp_path / "snaponly")
        assert result.wal_scan is None
        assert result.replayed_records == 0
        assert_identical(result.system, live)


class TestObservability:
    def test_recovery_metrics_and_events(self, tmp_path):
        _, directory = journalled_run(tmp_path, steps=18)
        wal = directory / "journal.wal"
        scan = read_wal(wal)
        truncate_file(wal, scan.valid_bytes - 3)
        recorder = Recorder()
        result = recover(directory, recorder=recorder)
        replayed = recorder.registry.counter("recovery.replayed_records")
        truncated = recorder.registry.counter("recovery.truncated_tail")
        assert replayed.value == result.replayed_records > 0
        assert truncated.value == result.truncated_tail_bytes > 0
        complete = recorder.trace.of_kind("recovery.complete")
        assert len(complete) == 1
        assert complete[0]["last_seq"] == result.last_seq

    def test_live_run_counts_appends_and_snapshots(self, tmp_path):
        recorder = Recorder()
        system = MultiDimensionalReputationSystem()
        manager = DurabilityManager(system, tmp_path / "obs",
                                    snapshot_every=5, recorder=recorder)
        manager.attach()
        drive(system, 12)
        manager.maybe_snapshot()
        manager.close()
        appended = recorder.registry.counter("wal.appended")
        assert appended.value == manager.last_seq > 0
        snapshots = recorder.registry.counter("wal.snapshots")
        assert snapshots.value >= 2  # baseline + at least one periodic
        assert recorder.trace.of_kind("wal.snapshot")

    def test_quarantine_event_emitted(self, tmp_path):
        _, directory = journalled_run(tmp_path, steps=20, snapshot_every=8)
        generations = sorted(directory.glob("snapshot-*.json"))
        flip_byte(generations[-1], 300)
        recorder = Recorder()
        recover(directory, recorder=recorder)
        events = recorder.trace.of_kind("recovery.quarantined")
        assert len(events) == 1
        assert events[0]["file"] == generations[-1].name

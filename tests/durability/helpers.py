"""Shared workload and exact-equality helpers for the durability tests."""

from repro.core import MultiDimensionalReputationSystem
from repro.core.persistence import snapshot_checksum, system_to_dict

USERS = ["alice", "bob", "carol", "dave"]
FILES = ["f1", "f2", "f3"]


def drive(system, steps, start=0):
    """Feed ``steps`` deterministic façade events, starting at event
    ``start`` of the fixed stream (so prefixes are well-defined)."""
    for i in range(start, start + steps):
        user = USERS[i % len(USERS)]
        peer = USERS[(i + 1) % len(USERS)]
        file_id = FILES[i % len(FILES)]
        t = 100.0 + 50.0 * i
        op = i % 6
        if op == 0:
            system.record_download(user, peer, file_id, 1e6 + i, timestamp=t)
        elif op == 1:
            system.record_vote(user, file_id, (i % 10) / 10.0, timestamp=t)
        elif op == 2:
            system.record_retention(user, file_id, 3600.0 * (1 + i % 4),
                                    timestamp=t)
        elif op == 3:
            system.record_play(user, file_id, 0.25 + (i % 3) * 0.25,
                               timestamp=t)
        elif op == 4:
            system.add_friend(user, peer)
        else:
            system.record_real_upload(user, 5e5 + i)


def matrix_dict(matrix):
    return {row: dict(matrix.row_view(row)) for row in matrix.row_ids()}


def assert_identical(recovered, live):
    """Exact-equality check: persisted document, checksum, and matrices."""
    recovered_doc = system_to_dict(recovered)
    live_doc = system_to_dict(live)
    assert recovered_doc == live_doc
    assert snapshot_checksum(recovered_doc) == snapshot_checksum(live_doc)
    recovered_view = recovered.refresh_view()
    live_view = live.refresh_view()
    assert matrix_dict(recovered_view.trust) == matrix_dict(live_view.trust)
    assert (matrix_dict(recovered_view.reputation)
            == matrix_dict(live_view.reputation))


def replay_reference(records):
    """A fresh system fed ``records`` through ``apply_record`` only."""
    system = MultiDimensionalReputationSystem()
    for record in records:
        system.apply_record(record.kind, record.payload)
    system.recompute()
    return system

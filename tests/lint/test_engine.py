"""Engine behaviour: walking, parse failures, gating, determinism."""

import pytest

from repro.lint import (JSON_SCHEMA_VERSION, PARSE_RULE_ID, Severity,
                        all_rules, lint_paths, lint_source, result_to_dict,
                        rules_by_id, should_fail)

BAD_SNIPPET = "import random\n\nvalue = random.random()\n"


def test_lint_source_flags_and_positions():
    result = lint_source(BAD_SNIPPET, "src/repro/core/snippet.py")
    assert [d.rule_id for d in result.diagnostics] == ["DET001"]
    diagnostic = result.diagnostics[0]
    assert (diagnostic.line, diagnostic.col) == (3, 9)


def test_parse_error_is_a_diagnostic_not_a_crash():
    result = lint_source("def broken(:\n", "src/repro/core/broken.py")
    assert len(result.diagnostics) == 1
    diagnostic = result.diagnostics[0]
    assert diagnostic.rule_id == PARSE_RULE_ID
    assert diagnostic.severity is Severity.ERROR


def test_lint_paths_walks_directories(tmp_path):
    package = tmp_path / "src" / "repro" / "core"
    package.mkdir(parents=True)
    (package / "dirty.py").write_text(BAD_SNIPPET, encoding="utf-8")
    (package / "clean.py").write_text("VALUE = 1\n", encoding="utf-8")
    (package / "notes.txt").write_text("not python", encoding="utf-8")
    result = lint_paths([str(tmp_path)])
    assert result.files_checked == 2
    assert [d.rule_id for d in result.diagnostics] == ["DET001"]


def test_lint_paths_is_deterministic(tmp_path):
    package = tmp_path / "src" / "repro" / "simulator"
    package.mkdir(parents=True)
    for name in ("b.py", "a.py", "c.py"):
        (package / name).write_text(BAD_SNIPPET, encoding="utf-8")
    first = result_to_dict(lint_paths([str(tmp_path)]))
    second = result_to_dict(lint_paths([str(tmp_path)]))
    assert first == second
    paths = [d["path"] for d in first["diagnostics"]]
    assert paths == sorted(paths)


def test_rule_selection_and_unknown_rule():
    rules = rules_by_id(["DET001", "NUM001"])
    assert [rule.rule_id for rule in rules] == ["DET001", "NUM001"]
    with pytest.raises(ValueError, match="unknown rule"):
        rules_by_id(["NOPE99"])
    result = lint_source(BAD_SNIPPET, "src/repro/core/snippet.py",
                         rules=rules_by_id(["NUM001"]))
    assert result.diagnostics == []


def test_should_fail_thresholds():
    result = lint_source(BAD_SNIPPET, "src/repro/core/snippet.py")
    assert should_fail(result, "error")        # DET001 is an error
    assert should_fail(result, Severity.NOTE)
    assert not should_fail(result, None)
    clean = lint_source("VALUE = 1\n", "src/repro/core/ok.py")
    assert not should_fail(clean, "note")


def test_json_document_schema():
    document = result_to_dict(lint_source(BAD_SNIPPET,
                                          "src/repro/core/snippet.py"))
    assert document["version"] == JSON_SCHEMA_VERSION
    assert document["files_checked"] == 1
    assert set(document["counts"]) == {"error", "warning", "note"}
    assert document["counts"]["error"] == 1
    assert document["suppressed"] == 0
    (entry,) = document["diagnostics"]
    assert set(entry) == {"path", "line", "col", "rule", "severity",
                          "message", "hint"}
    assert entry["rule"] == "DET001"


def test_severity_parse_rejects_unknown():
    with pytest.raises(ValueError, match="unknown severity"):
        Severity.parse("fatal")
    assert Severity.parse("Warning") is Severity.WARNING


def test_every_rule_has_id_summary_and_hint():
    rules = all_rules()
    assert len(rules) >= 6
    for rule in rules:
        assert rule.rule_id and rule.summary and rule.hint


def test_repository_source_tree_is_lint_clean():
    """The acceptance gate: `repro lint src` exits 0 on this tree."""
    from pathlib import Path

    src = Path(__file__).resolve().parents[2] / "src"
    result = lint_paths([str(src)])
    assert result.diagnostics == [], [d.render() for d in result.diagnostics]

"""Runtime contracts: simplex and row-stochastic invariants on live values."""

import pytest

from repro.core import (DEFAULT_CONFIG, EvaluationStore, TrustMatrix,
                        UserTrustStore, build_one_step_matrix,
                        compute_reputation_matrix)
from repro.lint import (ContractViolation, assert_row_stochastic,
                        assert_simplex, check_row_stochastic, check_simplex,
                        checking_invariants, contracts_enabled,
                        set_contracts_enabled)


@pytest.fixture(autouse=True)
def restore_override():
    yield
    set_contracts_enabled(None)


class TestAssertSimplex:
    def test_accepts_paper_defaults(self):
        assert_simplex((DEFAULT_CONFIG.eta, DEFAULT_CONFIG.rho))
        assert_simplex((DEFAULT_CONFIG.alpha, DEFAULT_CONFIG.beta,
                        DEFAULT_CONFIG.gamma))

    def test_rejects_off_simplex_sum(self):
        with pytest.raises(ContractViolation, match="must sum to 1"):
            assert_simplex((0.5, 0.6), name="(eta, rho)")

    def test_rejects_out_of_range_component(self):
        with pytest.raises(ContractViolation, match="outside"):
            assert_simplex((1.5, -0.5))

    def test_rejects_empty(self):
        with pytest.raises(ContractViolation, match="empty"):
            assert_simplex(())


class TestAssertRowStochastic:
    def test_accepts_normalized_trust_matrix(self):
        matrix = TrustMatrix({"a": {"b": 3.0, "c": 1.0}}).row_normalized()
        assert_row_stochastic(matrix, name="TM")

    def test_accepts_mapping_of_mappings(self):
        assert_row_stochastic({"a": {"b": 0.25, "c": 0.75}})

    def test_rejects_unnormalized_row(self):
        with pytest.raises(ContractViolation, match="row-stochastic"):
            assert_row_stochastic({"a": {"b": 0.9, "c": 0.9}})

    def test_substochastic_mode(self):
        rows = {"a": {"b": 0.3}}
        assert_row_stochastic(rows, strict=False)
        with pytest.raises(ContractViolation, match="sub-stochastic"):
            assert_row_stochastic({"a": {"b": 0.9, "c": 0.9}}, strict=False)

    def test_empty_rows_are_ignored(self):
        assert_row_stochastic({"a": {}})


class TestGating:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECK_INVARIANTS", raising=False)
        assert not contracts_enabled()
        # No-ops on violating input when disabled.
        check_simplex((0.5, 0.9))
        check_row_stochastic({"a": {"b": 2.0}})

    def test_environment_flag(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
        assert contracts_enabled()
        with pytest.raises(ContractViolation):
            check_simplex((0.5, 0.9))

    def test_programmatic_override_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
        set_contracts_enabled(False)
        check_simplex((0.5, 0.9))  # silenced by the override

    def test_scoped_context_manager(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECK_INVARIANTS", raising=False)
        with checking_invariants():
            assert contracts_enabled()
            with pytest.raises(ContractViolation):
                check_row_stochastic({"a": {"b": 0.5, "c": 0.9}})
        assert not contracts_enabled()


class TestPipelineCallSites:
    """The core call sites uphold the contracts on real data."""

    def _stores(self):
        evaluations = EvaluationStore()
        for user, file_id in (("u1", "f1"), ("u1", "f2"),
                              ("u2", "f1"), ("u2", "f2")):
            evaluations.record_vote(user, file_id, 1.0, timestamp=0.0)
        user_trust = UserTrustStore()
        user_trust.rate("u1", "u2", 0.8)
        return evaluations, user_trust

    def test_refresh_pipeline_passes_under_contracts(self):
        evaluations, user_trust = self._stores()
        with checking_invariants():
            one_step = build_one_step_matrix(evaluations,
                                             user_trust=user_trust)
            reputation = compute_reputation_matrix(one_step, steps=2)
        assert reputation is not None

    def test_corrupted_one_step_matrix_is_caught(self):
        super_stochastic = TrustMatrix({"a": {"b": 0.8, "c": 0.8}})
        with checking_invariants():
            with pytest.raises(ContractViolation, match="TM"):
                compute_reputation_matrix(super_stochastic, steps=1)

"""The `repro lint` subcommand: output formats, gating, exit codes."""

import json

import pytest

from repro.cli import main
from repro.lint import JSON_SCHEMA_VERSION

BAD_SNIPPET = "import random\n\nvalue = random.random()\n"
WARN_SNIPPET = "def f(x):\n    return x == 0.5\n"


@pytest.fixture
def dirty_tree(tmp_path):
    package = tmp_path / "src" / "repro" / "core"
    package.mkdir(parents=True)
    (package / "dirty.py").write_text(BAD_SNIPPET, encoding="utf-8")
    return tmp_path


@pytest.fixture
def warning_tree(tmp_path):
    package = tmp_path / "src" / "repro" / "analysis"
    package.mkdir(parents=True)
    (package / "warn.py").write_text(WARN_SNIPPET, encoding="utf-8")
    return tmp_path


def test_clean_tree_exits_zero(tmp_path, capsys):
    package = tmp_path / "src" / "repro" / "core"
    package.mkdir(parents=True)
    (package / "clean.py").write_text("VALUE = 1\n", encoding="utf-8")
    assert main(["lint", str(tmp_path)]) == 0
    assert "no findings" in capsys.readouterr().out


def test_error_findings_exit_one_by_default(dirty_tree, capsys):
    assert main(["lint", str(dirty_tree)]) == 1
    out = capsys.readouterr().out
    assert "DET001" in out
    assert "1 error" in out


def test_warning_gating(warning_tree):
    # Default gate is error: warnings report but do not fail.
    assert main(["lint", str(warning_tree)]) == 0
    assert main(["lint", str(warning_tree), "--fail-on", "warning"]) == 1
    assert main(["lint", str(warning_tree), "--fail-on", "never"]) == 0


def test_json_output_schema(dirty_tree, capsys):
    assert main(["lint", str(dirty_tree), "--format", "json"]) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["version"] == JSON_SCHEMA_VERSION
    assert document["counts"]["error"] == 1
    (entry,) = document["diagnostics"]
    assert entry["rule"] == "DET001"
    assert entry["path"].endswith("dirty.py")


def test_rule_subset(dirty_tree):
    assert main(["lint", str(dirty_tree), "--rules", "NUM001"]) == 0
    assert main(["lint", str(dirty_tree), "--rules", "DET001,NUM001"]) == 1


def test_unknown_rule_is_usage_error(dirty_tree, capsys):
    assert main(["lint", str(dirty_tree), "--rules", "NOPE99"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_missing_path_is_usage_error(capsys):
    assert main(["lint", "does/not/exist"]) == 2
    assert "no such path" in capsys.readouterr().err


def test_list_rules_catalogue(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("DET001", "DET002", "DET003",
                    "NUM001", "NUM002", "OBS001"):
        assert rule_id in out


def test_repository_gate_matches_ci_invocation(capsys):
    """`repro lint src --fail-on warning` — exactly what CI runs."""
    from pathlib import Path

    src = Path(__file__).resolve().parents[2] / "src"
    assert main(["lint", str(src), "--fail-on", "warning"]) == 0

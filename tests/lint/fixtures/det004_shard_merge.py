# lint-path: src/repro/core/shard_merge_fixture.py
"""DET004 fixture: unordered iteration inside shard merge/gather paths.

The virtual path lives in ``core`` with ``shard`` in the filename, so both
DET002 (set-only, whole file) and DET004 (sets *and* dict views, merge/
gather functions only) apply; lines flagged by both carry both ids.
"""


def merge_fragments(fragments, patches):
    for shard, fragment in fragments.items():       # expect[DET004]
        print(shard, fragment)
    for patch in patches.values():                  # expect[DET004]
        print(patch)
    for shard in fragments.keys():                  # expect[DET002, DET004]
        print(shard)
    for shard in set(fragments):                    # expect[DET002, DET004]
        print(shard)
    touched = {row for patch in patches for row in patch}
    for row in touched:                             # expect[DET002, DET004]
        print(row)


def gather_rows(jobs):
    return [row for job in jobs for row in job.rows.items()]  # expect[DET004]


def exchange_pinned(fragments, patches):
    for shard, fragment in sorted(fragments.items()):
        print(shard, fragment)
    for shard in sorted(patches):
        print(shard)
    rows = [patch for patch in patches]  # list iteration: order is explicit
    return rows


def apply_patch(patches):
    # Not a merge/gather function: dict-view iteration is DET004-exempt
    # (DET002 still polices sets and bare .keys()).
    for patch in patches.values():
        print(patch)

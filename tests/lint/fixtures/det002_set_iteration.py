# lint-path: src/repro/simulator/fixture_det002.py
"""DET002 fixture: hash-order iteration in the deterministic pipeline."""


def build_rows(evaluations, extra):
    for pair in set(evaluations):                  # expect[DET002]
        print(pair)
    for key in evaluations.keys():                 # expect[DET002]
        print(key)
    for item in {1, 2, 3}:                         # expect[DET002]
        print(item)
    for merged in set(evaluations).union(extra):   # expect[DET002]
        print(merged)
    ids = {record.user for record in evaluations}  # a set comprehension
    for user in ids:                               # expect[DET002]
        print(user)
    return ids


def pinned(evaluations, extra):
    for pair in sorted(set(evaluations)):
        print(pair)
    for key in sorted(evaluations):
        print(key)
    ids = {record.user for record in evaluations}
    for user in sorted(ids):
        print(user)
    ids = list(extra)  # rebound to a list: no longer tracked as a set
    for user in ids:
        print(user)

# lint-path: src/repro/core/fixture_clean.py
"""A module every rule should pass: the idioms the rules push toward."""

import math
import random
from typing import Dict, Iterable

from repro.lint.contracts import check_row_stochastic, check_simplex
from repro.obs import NULL_RECORDER


def build_matrix(pairs: Iterable[tuple], seed: int,
                 recorder=NULL_RECORDER) -> Dict[str, Dict[str, float]]:
    rng = random.Random(seed)
    rows: Dict[str, Dict[str, float]] = {}
    for a, b in sorted(set(pairs)):
        rows.setdefault(a, {})[b] = rng.random()
    for user in sorted(rows):
        total = math.fsum(rows[user].values())
        if total > 0.0:
            rows[user] = {other: value / total
                          for other, value in rows[user].items()}
    check_row_stochastic(rows, name="fixture")
    recorder.event("matrix_built", t=0.0, rows=len(rows))
    return rows


def blend(eta: float = 0.4, rho: float = 0.6) -> float:
    check_simplex((eta, rho), name="(eta, rho)")
    if math.isclose(eta + rho, 1.0, abs_tol=1e-9):
        return eta
    return rho

# lint-path: src/repro/analysis/fixture_num001.py
"""NUM001 fixture: exact float comparisons on trust arithmetic."""

import math


def classify(score, threshold, residual):
    if score == 0.5:                       # expect[NUM001]
        return "boundary"
    if residual != 1.0:                    # expect[NUM001]
        return "unconverged"
    if 0.25 == threshold:                  # expect[NUM001]
        return "quarter"
    return "other"


def fine(score, row_sum):
    # Exact-zero sentinel checks are exempt: the sparse matrix stores
    # zero as absent, so == 0.0 is a structural test, not arithmetic.
    if score == 0.0:
        return "absent"
    if math.isclose(row_sum, 1.0, abs_tol=1e-9):
        return "stochastic"
    return "other"

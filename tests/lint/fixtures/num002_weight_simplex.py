# lint-path: src/repro/core/fixture_num002.py
"""NUM002 fixture: literal weight tuples off the Eq. 1 / Eq. 7 simplex."""

from repro.core import ReputationConfig


def bad_configs():
    broken = ReputationConfig(eta=0.5, rho=0.6)                    # expect[NUM002]
    skewed = ReputationConfig(alpha=0.5, beta=0.4, gamma=0.3)      # expect[NUM002]
    swept = ReputationConfig.with_dimension_weights(0.6, 0.3, 0.2)  # expect[NUM002]
    dimension_weights = (0.5, 0.3, 0.3)                            # expect[NUM002]
    alpha, beta, gamma = 0.2, 0.2, 0.2                             # expect[NUM002]
    return broken, skewed, swept, dimension_weights, (alpha, beta, gamma)


def good_configs(computed_alpha, computed_beta):
    on_simplex = ReputationConfig(eta=0.4, rho=0.6)
    weights = (0.5, 0.3, 0.2)
    # Computed weights are invisible to the static rule; the runtime
    # contract (repro.lint.contracts.assert_simplex) covers them.
    partial = ReputationConfig(alpha=computed_alpha, beta=computed_beta,
                               gamma=0.2)
    return on_simplex, weights, partial

# lint-path: src/repro/core/fixture_det001.py
"""DET001 fixture: process-global RNG calls vs seeded instances."""

import random

import numpy as np
from random import shuffle


def bad(items):
    random.shuffle(items)            # expect[DET001]
    value = random.random()          # expect[DET001]
    pick = random.choice(items)      # expect[DET001]
    random.seed(7)                   # expect[DET001]
    noise = np.random.rand(3)        # expect[DET001]
    draw = np.random.normal()        # expect[DET001]
    shuffle(items)                   # expect[DET001]
    return value, pick, noise, draw


def good(items, seed):
    rng = random.Random(seed)
    rng.shuffle(items)
    generator = np.random.default_rng(seed)
    return rng.random(), generator.normal()

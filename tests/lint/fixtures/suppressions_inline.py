# lint-path: src/repro/core/fixture_suppressions.py
"""Suppression fixture: ``# repro: allow[...]`` silences same-line findings."""

import random
import time


def suppressed(items):
    random.shuffle(items)  # repro: allow[DET001]
    stamp = time.time()  # repro: allow[DET003]
    both = (random.random(), time.time())  # repro: allow[DET001,DET003]
    everything = random.random()  # repro: allow[*]
    return stamp, both, everything


def wrong_id(items):
    random.shuffle(items)  # repro: allow[DET003]    # expect[DET001]
    return items


def not_a_comment():
    # A suppression inside a string literal is just a string.
    return "x = time.time()  # repro: allow[DET003]"

# lint-path: src/repro/simulator/fixture_obs001.py
"""OBS001 fixture: bypassing the NULL_RECORDER recorder facade."""

from repro.obs import NULL_RECORDER, Recorder


def bad_wiring(events):
    recorder = Recorder()                          # expect[OBS001]
    if isinstance(recorder, Recorder):             # expect[OBS001]
        pass
    recorder.trace.record("tick", 0.0)             # expect[OBS001]
    count = len(recorder.registry)                 # expect[OBS001]
    return count


def good_wiring(events, recorder=NULL_RECORDER):
    recorder.event("tick", t=0.0)
    recorder.inc("events.seen")
    if recorder.enabled:
        recorder.observe("events.batch", len(events))
    with recorder.profile("fixture.phase"):
        pass

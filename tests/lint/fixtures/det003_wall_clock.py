# lint-path: src/repro/dht/fixture_det003.py
"""DET003 fixture: wall-clock / entropy APIs in a DHT hot path."""

import os
import time
import uuid
from datetime import datetime


def stamp_message(payload):
    now = time.time()                  # expect[DET003]
    tick = time.monotonic()            # expect[DET003]
    when = datetime.now()              # expect[DET003]
    token = os.urandom(16)             # expect[DET003]
    message_id = uuid.uuid4()          # expect[DET003]
    return now, tick, when, token, message_id


def simulated(clock):
    # Simulation time comes from the engine's clock: fine.
    return clock()

"""Fixture harness: every shipped rule demonstrated on real snippets.

Each fixture under ``fixtures/`` is a self-describing module:

* a ``# lint-path: <virtual path>`` header line tells the harness where
  the snippet should pretend to live (rules are path-aware);
* a trailing ``# expect[RULE-ID]`` comment marks each line the engine
  must flag with exactly that rule id.

The harness asserts an exact match in both directions: every expected
``(line, rule)`` pair is reported, and nothing else is.
"""

import re
from pathlib import Path

import pytest

from repro.lint import lint_source

FIXTURES = Path(__file__).parent / "fixtures"

_PATH_PATTERN = re.compile(r"#\s*lint-path:\s*(?P<path>\S+)")
_EXPECT_PATTERN = re.compile(r"#\s*expect\[(?P<ids>[A-Z0-9,\s]+)\]")


def load_fixture(name):
    source = (FIXTURES / name).read_text(encoding="utf-8")
    match = _PATH_PATTERN.search(source)
    assert match is not None, f"{name} has no '# lint-path:' header"
    expected = set()
    for line_number, line in enumerate(source.splitlines(), start=1):
        expect = _EXPECT_PATTERN.search(line)
        if expect is not None:
            for rule_id in expect.group("ids").split(","):
                expected.add((line_number, rule_id.strip()))
    return source, match.group("path"), expected


def fixture_names():
    return sorted(path.name for path in FIXTURES.glob("*.py"))


@pytest.mark.parametrize("name", fixture_names())
def test_fixture_diagnostics_match_expectations(name):
    source, virtual_path, expected = load_fixture(name)
    result = lint_source(source, virtual_path)
    reported = {(diagnostic.line, diagnostic.rule_id)
                for diagnostic in result.diagnostics}
    missing = expected - reported
    unexpected = reported - expected
    assert not missing, f"{name}: expected but not reported: {sorted(missing)}"
    assert not unexpected, f"{name}: reported but not expected: {sorted(unexpected)}"


def test_fixture_set_covers_every_shipped_rule():
    """Each registered rule is demonstrated by at least one failing line."""
    from repro.lint import RULES

    demonstrated = set()
    for name in fixture_names():
        _, _, expected = load_fixture(name)
        demonstrated.update(rule_id for _, rule_id in expected)
    assert demonstrated >= set(RULES), (
        f"rules without a failing fixture: {sorted(set(RULES) - demonstrated)}")


def test_diagnostics_carry_position_severity_and_hint():
    source, virtual_path, _ = load_fixture("det001_global_rng.py")
    result = lint_source(source, virtual_path)
    assert result.diagnostics, "fixture should produce diagnostics"
    for diagnostic in result.diagnostics:
        assert diagnostic.path == virtual_path
        assert diagnostic.line >= 1 and diagnostic.col >= 1
        assert str(diagnostic.severity) in ("note", "warning", "error")
        assert diagnostic.hint, "every shipped rule ships a fix hint"
        rendered = diagnostic.render()
        assert rendered.startswith(f"{virtual_path}:{diagnostic.line}:")
        assert diagnostic.rule_id in rendered


def test_suppression_fixture_reports_suppressed_diagnostics():
    source, virtual_path, _ = load_fixture("suppressions_inline.py")
    result = lint_source(source, virtual_path)
    # Five findings are silenced by allow comments; they surface in the
    # suppressed channel, not the failing one.
    assert len(result.suppressed) == 5
    assert {d.rule_id for d in result.suppressed} == {"DET001", "DET003"}


def test_rules_do_not_fire_outside_their_paths():
    source, _, expected = load_fixture("det003_wall_clock.py")
    assert expected, "fixture must expect DET003 findings"
    # The same snippet inside repro.obs (the allowlisted clock owner) or
    # under tests/ is exempt.
    for exempt_path in ("src/repro/obs/fixture.py", "tests/dht/fixture.py"):
        result = lint_source(source, exempt_path)
        assert not any(d.rule_id == "DET003" for d in result.diagnostics)

"""Suppression comment grammar and application."""

from repro.lint import lint_source
from repro.lint.suppressions import SUPPRESS_PATTERN, collect_suppressions


def test_grammar_accepts_reasonable_spacing():
    for comment in ("# repro: allow[DET001]",
                    "#repro:allow[DET001]",
                    "#  repro:  allow[ DET001 , NUM001 ]"):
        assert SUPPRESS_PATTERN.search(comment), comment
    assert not SUPPRESS_PATTERN.search("# allow[DET001]")
    assert not SUPPRESS_PATTERN.search("# repro: allow DET001")


def test_collect_maps_lines_to_ids():
    source = ("import time\n"
              "a = 1  # repro: allow[DET001]\n"
              "b = 2  # repro: allow[DET002,NUM001]\n"
              "c = 3  # repro: allow[*]\n")
    suppressions = collect_suppressions(source)
    assert suppressions[2] == frozenset({"DET001"})
    assert suppressions[3] == frozenset({"DET002", "NUM001"})
    assert suppressions[4] == frozenset({"*"})
    assert 1 not in suppressions


def test_string_literals_are_not_suppressions():
    source = 's = "# repro: allow[DET001]"\n'
    assert collect_suppressions(source) == {}


def test_suppression_only_silences_matching_rule_on_same_line():
    source = ("import random\n"
              "a = random.random()  # repro: allow[DET001]\n"
              "b = random.random()  # repro: allow[NUM001]\n"
              "c = random.random()\n")
    result = lint_source(source, "src/repro/core/example.py")
    assert [d.line for d in result.diagnostics] == [3, 4]
    assert [d.line for d in result.suppressed] == [2]


def test_wildcard_silences_every_rule():
    source = ("import random, time\n"
              "pair = (random.random(), time.time())  # repro: allow[*]\n")
    result = lint_source(source, "src/repro/core/example.py")
    assert result.diagnostics == []
    assert {d.rule_id for d in result.suppressed} == {"DET001", "DET003"}
